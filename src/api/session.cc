#include "api/session.h"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "core/config_text.h"
#include "schema/schema_text.h"
#include "workload/workload_text.h"

namespace warlock {

// All session state behind one stable heap allocation: the advisor (and its
// caches) hold references into the owned schema/mix, so none of it may
// relocate when the Session value moves.
struct Session::State {
  schema::StarSchema schema;
  workload::QueryMix mix;
  core::ToolConfig config;

  // Constructed after the owned inputs so its references are valid for the
  // state's whole lifetime. Selecting the bitmap scheme happens here, once.
  std::optional<core::Advisor> advisor;

  // Persistent worker pool for Advise fan-outs and WhatIf prefetch
  // searches; sized by config.threads after option overrides.
  std::optional<common::ThreadPool> pool;

  // Delta re-costing memo for full evaluations (internally synchronized;
  // a pure cache, so memo-on and memo-off responses are bit-identical).
  core::EvalMemo memo;

  // The session-wide instrument directory; every component registers its
  // counters/gauges/histograms here in Create (after advisor and pool
  // exist), so one Snapshot() is a consistent cross-component view.
  obs::MetricRegistry metrics;

  obs::Counter advise_calls;
  obs::Counter whatif_calls;

  State(schema::StarSchema s, workload::QueryMix m, core::ToolConfig c)
      : schema(std::move(s)),
        mix(std::move(m)),
        config(std::move(c)),
        memo(config.eval_memo_capacity) {}
};

namespace {

// Reads one input file, distinguishing the two ways it can fail: a path
// that does not exist is kNotFound (caller typo or missing artifact — fix
// the path), anything present but unreadable is kIoError (permissions, a
// directory, a failing device — fix the file).
Result<std::string> ReadFileToString(const std::string& path) {
  WARLOCK_RETURN_IF_ERROR(
      common::failpoint::Check(common::failpoint::kReadFile));
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) {
    return Status::NotFound("no such file: " + path);
  }
  if (!std::filesystem::is_regular_file(path, ec) || ec) {
    return Status::IoError("not a regular file: " + path);
  }
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open " + path);
  std::ostringstream os;
  os << f.rdbuf();
  if (f.bad() || os.fail()) return Status::IoError("read failed: " + path);
  return os.str();
}

}  // namespace

Session::Session(std::unique_ptr<State> state) : state_(std::move(state)) {}
Session::Session(Session&&) noexcept = default;
Session& Session::operator=(Session&&) noexcept = default;
Session::~Session() = default;

Result<Session> Session::Create(schema::StarSchema schema,
                                workload::QueryMix mix,
                                core::ToolConfig config,
                                const SessionOptions& options) {
  if (config.fact_index >= schema.num_facts()) {
    return Status::InvalidArgument("config fact_index out of range");
  }
  WARLOCK_RETURN_IF_ERROR(config.cost.disks.Validate());
  if (options.threads.has_value()) config.threads = *options.threads;

  auto state = std::make_unique<State>(std::move(schema), std::move(mix),
                                       std::move(config));
  state->advisor.emplace(state->schema, state->mix, state->config);
  state->pool.emplace(state->config.threads);
  state->advisor->RegisterMetrics(state->metrics);
  state->memo.RegisterMetrics(state->metrics, "memo.");
  state->pool->RegisterMetrics(state->metrics, "pool.");
  state->metrics.RegisterCounter("session.advise_calls",
                                 &state->advise_calls);
  state->metrics.RegisterCounter("session.whatif_calls",
                                 &state->whatif_calls);
  return Session(std::move(state));
}

Result<Session> Session::FromText(std::string_view schema_text,
                                  std::string_view workload_text,
                                  std::string_view config_text,
                                  const SessionOptions& options) {
  // Fault seams: each parser can be failed independently, so tests can
  // prove a fault in any one input yields a clean, annotated error and a
  // construction that never half-succeeds.
  if (const Status s =
          common::failpoint::Check(common::failpoint::kParseSchema);
      !s.ok()) {
    return Status::Annotate("schema", s);
  }
  auto schema = schema::SchemaFromText(schema_text);
  if (!schema.ok()) return Status::Annotate("schema", schema.status());
  if (const Status s =
          common::failpoint::Check(common::failpoint::kParseWorkload);
      !s.ok()) {
    return Status::Annotate("workload", s);
  }
  auto mix = workload::QueryMixFromText(workload_text, *schema);
  if (!mix.ok()) return Status::Annotate("workload", mix.status());
  if (const Status s =
          common::failpoint::Check(common::failpoint::kParseConfig);
      !s.ok()) {
    return Status::Annotate("config", s);
  }
  auto config = core::ToolConfigFromText(config_text);
  if (!config.ok()) return Status::Annotate("config", config.status());
  return Create(std::move(schema).value(), std::move(mix).value(),
                std::move(config).value(), options);
}

Result<Session> Session::FromFiles(const std::string& schema_path,
                                   const std::string& workload_path,
                                   const std::string& config_path,
                                   const SessionOptions& options) {
  // Annotate which of the three inputs failed — the caller passed three
  // paths and the status message should say which one to fix.
  auto schema_text = ReadFileToString(schema_path);
  if (!schema_text.ok()) {
    return Status::Annotate("schema file", schema_text.status());
  }
  auto workload_text = ReadFileToString(workload_path);
  if (!workload_text.ok()) {
    return Status::Annotate("workload file", workload_text.status());
  }
  auto config_text = ReadFileToString(config_path);
  if (!config_text.ok()) {
    return Status::Annotate("config file", config_text.status());
  }
  return FromText(*schema_text, *workload_text, *config_text, options);
}

Result<Session> Session::FromScenario(const scenario::ScenarioSpec& spec,
                                      uint32_t index,
                                      const SessionOptions& options) {
  WARLOCK_ASSIGN_OR_RETURN(scenario::Scenario scenario,
                           scenario::GenerateScenario(spec, index));
  return Create(std::move(scenario.schema), std::move(scenario.mix),
                std::move(scenario.config), options);
}

Result<AdviseResponse> Session::Advise(const AdviseRequest& request) const {
  // One effective token: caller cancellation composed with the request
  // deadline (cancellation wins when both have fired).
  const common::CancelToken cancel =
      request.cancel_token.WithDeadline(request.deadline);
  try {
    core::Advisor::Overrides overrides;
    overrides.allocator = request.allocator;
    WARLOCK_ASSIGN_OR_RETURN(
        core::AdvisorResult result,
        state_->advisor->Run(&*state_->pool, &state_->memo, cancel,
                             overrides));
    if (request.top_k.has_value() && result.ranking.size() > *request.top_k) {
      result.ranking.resize(*request.top_k);
    }
    state_->advise_calls.Increment();
    return AdviseResponse{std::move(result)};
  } catch (const std::exception& e) {
    // The facade never throws: anything that escaped the advisor's own
    // containment (e.g. an allocation failure while assembling the result)
    // degrades to a clean status.
    return Status::Internal(std::string("advise failed: ") + e.what());
  } catch (...) {
    return Status::Internal("advise failed");
  }
}

Result<WhatIfResponse> Session::WhatIf(const WhatIfRequest& request) const {
  const common::CancelToken cancel =
      request.cancel_token.WithDeadline(request.deadline);
  try {
    WARLOCK_ASSIGN_OR_RETURN(
        core::EvaluatedCandidate candidate,
        state_->advisor->FullyEvaluate(request.fragmentation,
                                       request.overrides, &*state_->pool,
                                       &state_->memo, cancel));
    state_->whatif_calls.Increment();
    return WhatIfResponse{std::move(candidate)};
  } catch (const std::exception& e) {
    return Status::Internal(std::string("what-if failed: ") + e.what());
  } catch (...) {
    return Status::Internal("what-if failed");
  }
}

Result<std::vector<double>> Session::DiskAccessProfile(
    const fragment::Fragmentation& fragmentation,
    const workload::QueryClass& query_class,
    const core::Advisor::Overrides& overrides) const {
  return state_->advisor->DiskAccessProfile(fragmentation, query_class,
                                            overrides);
}

const schema::StarSchema& Session::schema() const { return state_->schema; }
const workload::QueryMix& Session::mix() const { return state_->mix; }
const core::ToolConfig& Session::config() const { return state_->config; }
const core::Advisor& Session::advisor() const { return *state_->advisor; }
const obs::MetricRegistry& Session::metrics() const {
  return state_->metrics;
}

SessionStats Session::stats() const {
  const fragment::FragmentSizesCache& cache = state_->advisor->sizes_cache();
  SessionStats stats;
  stats.advise_calls = state_->advise_calls.Value();
  stats.whatif_calls = state_->whatif_calls.Value();
  stats.fragment_sizes_reused = cache.hits();
  stats.fragment_sizes_computed = cache.misses();
  stats.fragment_sizes_entries = cache.size();
  stats.fragment_sizes_evictions = cache.evictions();
  stats.memo = state_->memo.stats();
  stats.pool_threads = state_->pool->num_threads();
  stats.pool_dropped_exceptions = state_->pool->dropped_exceptions();
  return stats;
}

}  // namespace warlock
