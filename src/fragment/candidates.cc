#include "fragment/candidates.h"

#include "common/math.h"

namespace warlock::fragment {

uint64_t CandidateSpaceSize(const schema::StarSchema& schema) {
  uint64_t n = 1;
  for (size_t d = 0; d < schema.num_dimensions(); ++d) {
    n = SaturatingMul(n, schema.dimension(d).num_levels() + 1);
  }
  return n;
}

Result<std::vector<Candidate>> EnumerateCandidates(
    const schema::StarSchema& schema, size_t fact_index, uint32_t page_size,
    const Thresholds& thresholds) {
  if (fact_index >= schema.num_facts()) {
    return Status::OutOfRange("fact table index out of range");
  }
  if (page_size == 0) {
    return Status::InvalidArgument("page size must be > 0");
  }
  constexpr uint64_t kMaxCandidateSpace = 1ULL << 22;
  if (CandidateSpaceSize(schema) > kMaxCandidateSpace) {
    return Status::ResourceExhausted(
        "candidate space too large to enumerate exhaustively");
  }

  const schema::FactTable& fact = schema.fact(fact_index);
  const uint64_t total_pages = fact.TotalPages(page_size);

  const size_t num_dims = schema.num_dimensions();
  // Odometer over per-dimension choices: 0 = dimension unused, 1..L = level
  // index + 1.
  std::vector<size_t> choice(num_dims, 0);
  std::vector<Candidate> out;
  while (true) {
    std::vector<FragAttr> attrs;
    for (size_t d = 0; d < num_dims; ++d) {
      if (choice[d] > 0) {
        attrs.push_back({static_cast<uint32_t>(d),
                         static_cast<uint32_t>(choice[d] - 1)});
      }
    }
    Candidate cand{Fragmentation(), false, ""};
    {
      auto frag = Fragmentation::Create(std::move(attrs), schema);
      if (!frag.ok()) {
        // Fragment count overflow: treat as an excluded candidate rather
        // than failing the whole enumeration.
        cand.excluded = true;
        cand.exclusion_reason = frag.status().message();
        auto empty = Fragmentation::Create({}, schema);
        cand.fragmentation = std::move(empty).value();
      } else {
        cand.fragmentation = std::move(frag).value();
      }
    }
    if (!cand.excluded) {
      const Fragmentation& f = cand.fragmentation;
      if (f.num_attrs() > thresholds.max_dimensions) {
        cand.excluded = true;
        cand.exclusion_reason =
            "fragments " + std::to_string(f.num_attrs()) +
            " dimensions, above the limit of " +
            std::to_string(thresholds.max_dimensions);
      } else if (f.NumFragments() > thresholds.max_fragments) {
        cand.excluded = true;
        cand.exclusion_reason =
            std::to_string(f.NumFragments()) +
            " fragments exceed the limit of " +
            std::to_string(thresholds.max_fragments);
      } else if (thresholds.exclude_empty && f.num_attrs() == 0) {
        cand.excluded = true;
        cand.exclusion_reason = "empty fragmentation excluded";
      } else {
        const uint64_t avg_pages =
            CeilDiv(total_pages, f.NumFragments());
        if (avg_pages < thresholds.min_avg_fragment_pages) {
          cand.excluded = true;
          cand.exclusion_reason =
              "average fragment of " + std::to_string(avg_pages) +
              " page(s) drops below the prefetching granule of " +
              std::to_string(thresholds.min_avg_fragment_pages);
        }
      }
    }
    out.push_back(std::move(cand));

    size_t d = num_dims;
    bool done = true;
    while (d-- > 0) {
      if (++choice[d] <= schema.dimension(d).num_levels()) {
        done = false;
        break;
      }
      choice[d] = 0;
    }
    if (done) break;
  }
  return out;
}

}  // namespace warlock::fragment
