#include "fragment/fragmentation.h"

#include <algorithm>
#include <set>

#include "common/math.h"

namespace warlock::fragment {

Result<Fragmentation> Fragmentation::Create(std::vector<FragAttr> attrs,
                                            const schema::StarSchema& schema) {
  std::set<uint32_t> dims;
  for (const FragAttr& a : attrs) {
    if (a.dim >= schema.num_dimensions()) {
      return Status::OutOfRange("fragmentation: dimension index " +
                                std::to_string(a.dim) + " out of range");
    }
    const schema::Dimension& d = schema.dimension(a.dim);
    if (a.level >= d.num_levels()) {
      return Status::OutOfRange("fragmentation: level index " +
                                std::to_string(a.level) +
                                " out of range for dimension '" + d.name() +
                                "'");
    }
    if (!dims.insert(a.dim).second) {
      return Status::InvalidArgument(
          "fragmentation: multiple attributes for dimension '" + d.name() +
          "'");
    }
  }
  std::sort(attrs.begin(), attrs.end(),
            [](const FragAttr& a, const FragAttr& b) { return a.dim < b.dim; });
  std::vector<uint64_t> cards;
  cards.reserve(attrs.size());
  uint64_t num_fragments = 1;
  for (const FragAttr& a : attrs) {
    const uint64_t card = schema.dimension(a.dim).cardinality(a.level);
    if (MulWouldOverflow(num_fragments, card)) {
      return Status::InvalidArgument(
          "fragmentation: fragment count overflows 64 bits");
    }
    num_fragments *= card;
    cards.push_back(card);
  }
  return Fragmentation(std::move(attrs), std::move(cards), num_fragments);
}

Result<Fragmentation> Fragmentation::FromNames(
    const std::vector<std::pair<std::string, std::string>>& attr_names,
    const schema::StarSchema& schema) {
  std::vector<FragAttr> attrs;
  attrs.reserve(attr_names.size());
  for (const auto& [dim_name, level_name] : attr_names) {
    WARLOCK_ASSIGN_OR_RETURN(size_t dim, schema.DimensionIndex(dim_name));
    WARLOCK_ASSIGN_OR_RETURN(size_t level,
                             schema.dimension(dim).LevelIndex(level_name));
    attrs.push_back(
        {static_cast<uint32_t>(dim), static_cast<uint32_t>(level)});
  }
  return Create(std::move(attrs), schema);
}

std::optional<uint32_t> Fragmentation::LevelOf(uint32_t dim) const {
  for (const FragAttr& a : attrs_) {
    if (a.dim == dim) return a.level;
  }
  return std::nullopt;
}

uint64_t Fragmentation::FragmentId(const std::vector<uint64_t>& coords) const {
  uint64_t id = 0;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    id = id * cards_[i] + coords[i];
  }
  return id;
}

std::vector<uint64_t> Fragmentation::Coordinates(uint64_t fragment_id) const {
  std::vector<uint64_t> coords(attrs_.size());
  for (size_t i = attrs_.size(); i-- > 0;) {
    coords[i] = fragment_id % cards_[i];
    fragment_id /= cards_[i];
  }
  return coords;
}

std::string Fragmentation::Label(const schema::StarSchema& schema) const {
  if (attrs_.empty()) return "-";
  std::string label;
  for (const FragAttr& a : attrs_) {
    if (!label.empty()) label += " x ";
    label += schema.dimension(a.dim).level(a.level).name;
  }
  return label;
}

}  // namespace warlock::fragment
