#ifndef WARLOCK_FRAGMENT_QUERY_HITS_H_
#define WARLOCK_FRAGMENT_QUERY_HITS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "fragment/fragment_sizes.h"
#include "fragment/fragmentation.h"
#include "schema/star_schema.h"
#include "workload/query.h"

namespace warlock::fragment {

/// Expected-value summary of which fragments a query class touches under a
/// fragmentation — MDHF's central property: star query work is confined to a
/// subset of the fragments whenever at least one fragmentation dimension is
/// accessed.
struct HitSummary {
  /// Expected number of fragments the query touches.
  double fragments_hit = 0.0;
  /// Expected total qualifying fact rows.
  double qualifying_rows = 0.0;
  /// Expected qualifying rows per touched fragment.
  double rows_per_hit_fragment = 0.0;
  /// Fraction of a touched fragment's rows that qualify (residual
  /// selectivity the bitmap indexes must resolve; 1.0 means the fragment
  /// qualifies entirely and no bitmap filtering is needed).
  double residual_selectivity = 1.0;
};

/// Computes the expected-value hit summary for `qc` under `fragmentation`,
/// assuming query values drawn uniformly.
HitSummary AnalyzeExpected(const Fragmentation& fragmentation,
                           const workload::QueryClass& qc,
                           const schema::StarSchema& schema,
                           size_t fact_index);

/// One fragment touched by a concrete query.
struct FragmentHit {
  uint64_t fragment_id = 0;
  /// Expected qualifying rows inside this fragment (fractional: expectation
  /// under the data distribution).
  double qualifying_rows = 0.0;
  /// True iff every row of the fragment qualifies (the restrictions are
  /// fully resolved by the fragment boundaries in all dimensions).
  bool fully_qualified = false;
};

/// Per-attribute contiguous range [begin, end) of fragmentation-attribute
/// values a concrete query touches; parallel to `Fragmentation::attrs()`.
struct HitRanges {
  std::vector<uint64_t> begin;
  std::vector<uint64_t> end;

  /// Product of range widths = number of fragments hit.
  uint64_t NumFragments() const;
};

/// Computes the fragmentation-coordinate ranges `cq` touches.
HitRanges ComputeHitRanges(const Fragmentation& fragmentation,
                           const workload::ConcreteQuery& cq,
                           const schema::StarSchema& schema);

/// Enumerates every fragment a concrete query touches, with expected
/// qualifying row counts. Fails with ResourceExhausted when more than
/// `max_hits` fragments are touched (the caller falls back to the
/// expected-value model).
Result<std::vector<FragmentHit>> EnumerateHits(
    const Fragmentation& fragmentation, const workload::ConcreteQuery& cq,
    const schema::StarSchema& schema, size_t fact_index,
    const FragmentSizes& sizes, uint64_t max_hits = 1ULL << 20);

}  // namespace warlock::fragment

#endif  // WARLOCK_FRAGMENT_QUERY_HITS_H_
