#ifndef WARLOCK_FRAGMENT_FRAGMENTATION_H_
#define WARLOCK_FRAGMENT_FRAGMENTATION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "schema/star_schema.h"

namespace warlock::fragment {

/// A fragmentation attribute: dimension `dim` fragmented at hierarchy level
/// `level` ("point" fragmentation — attribute range size 1, as WARLOCK's
/// prediction layer restricts the evaluation space to).
struct FragAttr {
  uint32_t dim = 0;
  uint32_t level = 0;

  bool operator==(const FragAttr&) const = default;
};

/// A multi-dimensional hierarchical range fragmentation (MDHF) of a fact
/// table: a set of fragmentation attributes, at most one per dimension. All
/// fact rows sharing one value combination of the fragmentation attributes
/// form one fragment. The empty attribute set is the degenerate
/// "no fragmentation" (a single fragment). Bitmap fragments follow the fact
/// fragmentation exactly.
///
/// Fragments are identified by ids in [0, NumFragments()) that enumerate the
/// value combinations in *logical order*: lexicographic by attribute, in
/// schema dimension order — the order the logical round-robin allocation
/// scheme walks.
class Fragmentation {
 public:
  /// Constructs the empty fragmentation (a single fragment). Prefer
  /// `Create({}, schema)` when a schema is at hand; this constructor exists
  /// so containers and aggregates can hold fragmentations.
  Fragmentation() = default;

  /// Validates `attrs` against `schema`: indexes in range, at most one
  /// attribute per dimension, and the fragment count representable in 64
  /// bits. Attributes are normalized to schema dimension order.
  static Result<Fragmentation> Create(std::vector<FragAttr> attrs,
                                      const schema::StarSchema& schema);

  /// Convenience: build from (dimension name, level name) pairs.
  static Result<Fragmentation> FromNames(
      const std::vector<std::pair<std::string, std::string>>& attr_names,
      const schema::StarSchema& schema);

  /// The attributes in schema dimension order.
  const std::vector<FragAttr>& attrs() const { return attrs_; }

  /// Number of fragmentation dimensions (0 = unfragmented).
  size_t num_attrs() const { return attrs_.size(); }

  /// Fragmentation level of dimension `dim`, or nullopt if `dim` is not a
  /// fragmentation dimension.
  std::optional<uint32_t> LevelOf(uint32_t dim) const;

  /// Total number of fragments (product of attribute cardinalities; 1 for
  /// the empty fragmentation).
  uint64_t NumFragments() const { return num_fragments_; }

  /// Cardinality of attribute `i` (parallel to attrs()).
  const std::vector<uint64_t>& cardinalities() const { return cards_; }

  /// Maps attribute value coordinates (parallel to attrs()) to the fragment
  /// id in logical order.
  uint64_t FragmentId(const std::vector<uint64_t>& coords) const;

  /// Inverse of `FragmentId`.
  std::vector<uint64_t> Coordinates(uint64_t fragment_id) const;

  /// Human-readable label like "Month x Group" ("-" when empty).
  std::string Label(const schema::StarSchema& schema) const;

  bool operator==(const Fragmentation& other) const {
    return attrs_ == other.attrs_;
  }

 private:
  Fragmentation(std::vector<FragAttr> attrs, std::vector<uint64_t> cards,
                uint64_t num_fragments)
      : attrs_(std::move(attrs)),
        cards_(std::move(cards)),
        num_fragments_(num_fragments) {}

  std::vector<FragAttr> attrs_;
  std::vector<uint64_t> cards_;
  uint64_t num_fragments_ = 1;
};

}  // namespace warlock::fragment

#endif  // WARLOCK_FRAGMENT_FRAGMENTATION_H_
