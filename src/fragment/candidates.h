#ifndef WARLOCK_FRAGMENT_CANDIDATES_H_
#define WARLOCK_FRAGMENT_CANDIDATES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "fragment/fragmentation.h"
#include "schema/star_schema.h"

namespace warlock::fragment {

/// Exclusion thresholds applied by WARLOCK's prediction layer before any
/// cost evaluation ("additional thresholds are applied to exclude
/// fragmentations that, for instance, cause fragment sizes to drop below the
/// prefetching granule etc.").
struct Thresholds {
  /// Exclude candidates with more fragments than this (metadata and
  /// allocation overhead bound).
  uint64_t max_fragments = 1ULL << 20;

  /// Exclude candidates whose *average* fragment is smaller than this many
  /// pages. Set this to the prefetching granule so that every fragment can
  /// absorb at least one full prefetch I/O.
  uint64_t min_avg_fragment_pages = 1;

  /// Exclude candidates fragmenting more than this many dimensions.
  uint32_t max_dimensions = 4;

  /// When true, the degenerate empty fragmentation (single fragment, no
  /// parallelism) is excluded as well.
  bool exclude_empty = false;
};

/// An enumerated fragmentation candidate with its threshold verdict.
struct Candidate {
  Fragmentation fragmentation;
  bool excluded = false;
  /// Empty when not excluded; otherwise the human-readable reason shown in
  /// the analysis layer.
  std::string exclusion_reason;
};

/// Enumerates the complete "point" fragmentation space for `schema`: every
/// combination of at most one hierarchy level per dimension (including the
/// empty fragmentation), each checked against `thresholds`.
///
/// The candidate count is the product over dimensions of (1 + #levels);
/// e.g. APB-1 yields 7 * 3 * 4 * 2 = 168 candidates.
Result<std::vector<Candidate>> EnumerateCandidates(
    const schema::StarSchema& schema, size_t fact_index, uint32_t page_size,
    const Thresholds& thresholds);

/// Number of candidates `EnumerateCandidates` produces for `schema`.
uint64_t CandidateSpaceSize(const schema::StarSchema& schema);

}  // namespace warlock::fragment

#endif  // WARLOCK_FRAGMENT_CANDIDATES_H_
