#ifndef WARLOCK_FRAGMENT_FRAGMENT_SIZES_H_
#define WARLOCK_FRAGMENT_FRAGMENT_SIZES_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "fragment/fragmentation.h"
#include "obs/metrics.h"
#include "schema/star_schema.h"

namespace warlock::fragment {

/// Per-fragment size statistics of a fragmentation applied to a fact table.
///
/// Fragment row counts are *expected* values under the schema's per-level
/// value weights: uniform data gives identical fragments; Zipf skew at a
/// dimension's bottom level propagates to whichever level fragments that
/// dimension, making fragment sizes the product of per-dimension value
/// weights. These sizes feed both the I/O cost model and the greedy
/// size-based allocation scheme.
class FragmentSizes {
 public:
  /// Computes sizes for every fragment. Fails with ResourceExhausted when
  /// the fragmentation has more than `max_fragments` fragments (callers
  /// exclude such candidates by threshold before costing them).
  static Result<FragmentSizes> Compute(const Fragmentation& fragmentation,
                                       const schema::StarSchema& schema,
                                       size_t fact_index, uint32_t page_size,
                                       uint64_t max_fragments = 1ULL << 22);

  /// Number of fragments.
  uint64_t num_fragments() const { return rows_.size(); }

  /// Expected rows in fragment `id`.
  double rows(uint64_t id) const { return rows_[id]; }

  /// Pages occupied by fragment `id` (>= 1: a fragment owns at least one
  /// page on disk).
  uint64_t pages(uint64_t id) const;

  /// Bytes occupied by fragment `id` (pages * page_size).
  uint64_t bytes(uint64_t id) const { return pages(id) * page_size_; }

  /// Rows per fact page.
  uint64_t rows_per_page() const { return rows_per_page_; }

  /// Page size the computation used.
  uint32_t page_size() const { return page_size_; }

  /// Total fact rows.
  double total_rows() const { return total_rows_; }

  /// Total pages over all fragments.
  uint64_t TotalPages() const;

  /// Largest fragment's pages.
  uint64_t MaxPages() const;

  /// Mean fragment pages.
  double AvgPages() const;

  /// Size-skew ratio: max fragment rows / mean fragment rows (1.0 when
  /// perfectly balanced).
  double SkewFactor() const;

 private:
  FragmentSizes(std::vector<double> rows, uint64_t rows_per_page,
                uint32_t page_size, double total_rows)
      : rows_(std::move(rows)),
        rows_per_page_(rows_per_page),
        page_size_(page_size),
        total_rows_(total_rows) {}

  std::vector<double> rows_;
  uint64_t rows_per_page_;
  uint32_t page_size_;
  double total_rows_;
};

/// Thread-safe memo of `FragmentSizes::Compute` results keyed by
/// fragmentation (plus the compute inputs that could vary between calls).
/// The advisor's screening phase derives every candidate's sizes once; the
/// full-evaluation phase and interactive what-if calls then reuse them
/// instead of recomputing the per-fragment weight products.
///
/// Entries are shared immutable snapshots (`shared_ptr<const>`), so hits are
/// safe to hand to concurrent cost-model constructions. Failed computations
/// are not cached (callers exclude those candidates before re-asking).
///
/// Residency is bounded by `capacity` entries (0 = unbounded), evicted
/// least-recently-used so a long-lived session sweeping many distinct
/// fragmentations cannot grow the memo without bound. Evicting never
/// invalidates handed-out snapshots (they are shared), only forces a
/// recompute on the next lookup.
class FragmentSizesCache {
 public:
  /// Default entry cap (`ToolConfig::sizes_cache_capacity`).
  static constexpr size_t kDefaultCapacity = 4096;

  explicit FragmentSizesCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  /// Returns the cached sizes for the key, computing and inserting on miss.
  /// Concurrent misses on the same key may compute twice; the first insert
  /// wins and both callers observe the same snapshot. The schema's address
  /// participates in the key, so every schema passed here must stay alive
  /// (and unmodified) for the cache's lifetime.
  Result<std::shared_ptr<const FragmentSizes>> GetOrCompute(
      const Fragmentation& fragmentation, const schema::StarSchema& schema,
      size_t fact_index, uint32_t page_size, uint64_t max_fragments);

  /// Entries currently memoized (test/introspection hook).
  size_t size() const;

  /// The entry cap this cache was built with (0 = unbounded).
  size_t capacity() const { return capacity_; }

  /// Lookups served from the memo without recomputing (the session API's
  /// warm-reuse contract is asserted against these counters).
  uint64_t hits() const { return hits_.Value(); }

  /// Lookups that had to run `FragmentSizes::Compute` (includes failed
  /// computations, which are not cached).
  uint64_t misses() const { return misses_.Value(); }

  /// Entries discarded by the size cap (surfaced in `Session::stats()`).
  uint64_t evictions() const { return evictions_.Value(); }

  /// Registers the cache's instruments (`<prefix>hits`, `<prefix>misses`,
  /// `<prefix>evictions`, `<prefix>entries`) as views on `registry`. The
  /// cache keeps owning them; the registry must not outlive it.
  void RegisterMetrics(obs::MetricRegistry& registry,
                       const std::string& prefix = "sizes_cache.") const;

 private:
  using Key = std::vector<uint64_t>;
  struct Entry {
    std::shared_ptr<const FragmentSizes> sizes;
    std::list<Key>::iterator lru;
  };

  const size_t capacity_;

  mutable std::mutex mu_;
  std::map<Key, Entry> cache_;
  // Front = most recently used key.
  std::list<Key> lru_;
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter evictions_;
  obs::Gauge entries_;
};

}  // namespace warlock::fragment

#endif  // WARLOCK_FRAGMENT_FRAGMENT_SIZES_H_
