#include "fragment/fragment_sizes.h"

#include <algorithm>
#include <cmath>

#include "common/math.h"

namespace warlock::fragment {

Result<FragmentSizes> FragmentSizes::Compute(
    const Fragmentation& fragmentation, const schema::StarSchema& schema,
    size_t fact_index, uint32_t page_size, uint64_t max_fragments) {
  if (fact_index >= schema.num_facts()) {
    return Status::OutOfRange("fact table index out of range");
  }
  if (page_size == 0) {
    return Status::InvalidArgument("page size must be > 0");
  }
  const uint64_t m = fragmentation.NumFragments();
  if (m > max_fragments) {
    return Status::ResourceExhausted(
        "fragmentation has " + std::to_string(m) +
        " fragments, above the computation limit of " +
        std::to_string(max_fragments));
  }
  const schema::FactTable& fact = schema.fact(fact_index);
  const double total_rows = static_cast<double>(fact.row_count());

  // Fragment weight = product of the attribute-value weights along its
  // coordinates. Computed as an m-sized array built attribute by attribute.
  std::vector<double> rows(m, total_rows);
  uint64_t stride = m;  // product of cardinalities not yet consumed
  const auto& attrs = fragmentation.attrs();
  for (size_t i = 0; i < attrs.size(); ++i) {
    const schema::Dimension& d = schema.dimension(attrs[i].dim);
    const std::vector<double>& w = d.LevelWeights(attrs[i].level);
    const uint64_t card = w.size();
    stride /= card;
    // Fragment id layout: coords[0] is the most significant digit.
    // id = (((c0 * card1) + c1) * card2 + c2) ...; attribute i's coordinate
    // cycles with period `stride`, repeating `m / (card * stride)` times.
    uint64_t id = 0;
    const uint64_t repeats = m / (card * stride);
    for (uint64_t rep = 0; rep < repeats; ++rep) {
      for (uint64_t v = 0; v < card; ++v) {
        for (uint64_t s = 0; s < stride; ++s) {
          rows[id++] *= w[v];
        }
      }
    }
  }

  const uint64_t rpp = fact.RowsPerPage(page_size);
  return FragmentSizes(std::move(rows), rpp, page_size, total_rows);
}

uint64_t FragmentSizes::pages(uint64_t id) const {
  const double r = rows_[id];
  if (r <= 0.0) return 1;
  const uint64_t rows_ceil = static_cast<uint64_t>(std::ceil(r));
  const uint64_t p = CeilDiv(rows_ceil, rows_per_page_);
  return p == 0 ? 1 : p;
}

uint64_t FragmentSizes::TotalPages() const {
  uint64_t total = 0;
  for (uint64_t i = 0; i < rows_.size(); ++i) total += pages(i);
  return total;
}

uint64_t FragmentSizes::MaxPages() const {
  uint64_t mx = 0;
  for (uint64_t i = 0; i < rows_.size(); ++i) mx = std::max(mx, pages(i));
  return mx;
}

double FragmentSizes::AvgPages() const {
  if (rows_.empty()) return 0.0;
  return static_cast<double>(TotalPages()) / static_cast<double>(rows_.size());
}

double FragmentSizes::SkewFactor() const {
  if (rows_.empty()) return 1.0;
  double mx = 0.0;
  for (double r : rows_) mx = std::max(mx, r);
  const double avg = total_rows_ / static_cast<double>(rows_.size());
  return avg > 0.0 ? mx / avg : 1.0;
}

Result<std::shared_ptr<const FragmentSizes>> FragmentSizesCache::GetOrCompute(
    const Fragmentation& fragmentation, const schema::StarSchema& schema,
    size_t fact_index, uint32_t page_size, uint64_t max_fragments) {
  Key key;
  key.reserve(4 + 2 * fragmentation.attrs().size());
  // The schema's identity is part of the key: the same attrs over a
  // different schema (weights, row counts) yield different sizes, and the
  // signature invites passing varying schemas to one cache.
  key.push_back(reinterpret_cast<uintptr_t>(&schema));
  key.push_back(fact_index);
  key.push_back(page_size);
  key.push_back(max_fragments);
  for (const FragAttr& attr : fragmentation.attrs()) {
    key.push_back(attr.dim);
    key.push_back(attr.level);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      hits_.Increment();
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      return it->second.sizes;
    }
  }
  misses_.Increment();

  // Compute outside the lock so concurrent misses on distinct candidates
  // proceed in parallel (the screening fan-out's common case).
  WARLOCK_ASSIGN_OR_RETURN(
      FragmentSizes sizes,
      FragmentSizes::Compute(fragmentation, schema, fact_index, page_size,
                             max_fragments));
  auto snapshot = std::make_shared<const FragmentSizes>(std::move(sizes));

  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    // A racing insert won; hand out the surviving snapshot so earlier
    // readers keep sharing it.
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return it->second.sizes;
  }
  lru_.push_front(key);
  Entry& entry = cache_[key];
  entry.sizes = std::move(snapshot);
  entry.lru = lru_.begin();
  if (capacity_ > 0 && cache_.size() > capacity_) {
    cache_.erase(lru_.back());
    lru_.pop_back();
    evictions_.Increment();
  }
  entries_.Set(static_cast<int64_t>(cache_.size()));
  return entry.sizes;
}

size_t FragmentSizesCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

void FragmentSizesCache::RegisterMetrics(obs::MetricRegistry& registry,
                                         const std::string& prefix) const {
  registry.RegisterCounter(prefix + "hits", &hits_);
  registry.RegisterCounter(prefix + "misses", &misses_);
  registry.RegisterCounter(prefix + "evictions", &evictions_);
  registry.RegisterGauge(prefix + "entries", &entries_);
}

}  // namespace warlock::fragment
