#include "fragment/query_hits.h"

#include <algorithm>
#include <cmath>

namespace warlock::fragment {

namespace {

// Sum of weights[v] for v in [begin, end).
double SumWeights(const std::vector<double>& weights, uint64_t begin,
                  uint64_t end) {
  double s = 0.0;
  for (uint64_t v = begin; v < end; ++v) s += weights[v];
  return s;
}

// Index of `dim`'s restriction within cq's restriction list, or SIZE_MAX.
size_t RestrictionIndex(const workload::QueryClass& qc, uint32_t dim) {
  const auto& rs = qc.restrictions();
  for (size_t i = 0; i < rs.size(); ++i) {
    if (rs[i].dim == dim) return i;
  }
  return SIZE_MAX;
}

}  // namespace

HitSummary AnalyzeExpected(const Fragmentation& fragmentation,
                           const workload::QueryClass& qc,
                           const schema::StarSchema& schema,
                           size_t fact_index) {
  const double total_rows =
      static_cast<double>(schema.fact(fact_index).row_count());
  double frag_hits = 1.0;
  double num_fragments = 1.0;
  for (size_t i = 0; i < fragmentation.num_attrs(); ++i) {
    const FragAttr& a = fragmentation.attrs()[i];
    const schema::Dimension& d = schema.dimension(a.dim);
    const double card_f = static_cast<double>(d.cardinality(a.level));
    num_fragments *= card_f;
    const workload::Restriction* r = qc.RestrictionFor(a.dim);
    if (r == nullptr) {
      frag_hits *= card_f;
      continue;
    }
    const double card_q = static_cast<double>(d.cardinality(r->level));
    const double nv = static_cast<double>(r->num_values);
    double hits_d;
    if (r->level <= a.level) {
      // Query attribute is the fragmentation attribute or an ancestor of it:
      // the nv selected values' descendants are hit, nothing else.
      hits_d = std::min(card_f, nv * card_f / card_q);
    } else {
      // Query is finer than the fragmentation: nv contiguous fine values
      // fall under ~ (nv-1)*card_f/card_q + 1 ancestors.
      hits_d = std::min(card_f, (nv - 1.0) * card_f / card_q + 1.0);
    }
    frag_hits *= hits_d;
  }

  HitSummary out;
  out.fragments_hit = frag_hits;
  out.qualifying_rows = total_rows * qc.UniformSelectivity(schema);
  out.rows_per_hit_fragment =
      frag_hits > 0.0 ? out.qualifying_rows / frag_hits : 0.0;
  // residual = qualifying rows per hit fragment / rows per fragment
  //          = sel * num_fragments / frag_hits  (uniform data).
  out.residual_selectivity = std::min(
      1.0, qc.UniformSelectivity(schema) * num_fragments / frag_hits);
  return out;
}

uint64_t HitRanges::NumFragments() const {
  uint64_t n = 1;
  for (size_t i = 0; i < begin.size(); ++i) n *= end[i] - begin[i];
  return n;
}

HitRanges ComputeHitRanges(const Fragmentation& fragmentation,
                           const workload::ConcreteQuery& cq,
                           const schema::StarSchema& schema) {
  const workload::QueryClass& qc = *cq.query_class;
  HitRanges ranges;
  ranges.begin.resize(fragmentation.num_attrs());
  ranges.end.resize(fragmentation.num_attrs());
  for (size_t i = 0; i < fragmentation.num_attrs(); ++i) {
    const FragAttr& a = fragmentation.attrs()[i];
    const schema::Dimension& d = schema.dimension(a.dim);
    const size_t ri = RestrictionIndex(qc, a.dim);
    if (ri == SIZE_MAX) {
      ranges.begin[i] = 0;
      ranges.end[i] = d.cardinality(a.level);
      continue;
    }
    const workload::Restriction& r = qc.restrictions()[ri];
    const uint64_t v0 = cq.start_values[ri];
    const uint64_t v1 = v0 + r.num_values - 1;  // inclusive last value
    if (r.level <= a.level) {
      // Restriction at same-or-coarser level: hit fragments are the
      // descendants of the selected value range.
      ranges.begin[i] = d.DescendantRange(r.level, v0, a.level).first;
      ranges.end[i] = d.DescendantRange(r.level, v1, a.level).second;
    } else {
      // Restriction finer than fragmentation: hit fragments are the
      // ancestors of the selected value range.
      ranges.begin[i] = d.AncestorValue(r.level, v0, a.level);
      ranges.end[i] = d.AncestorValue(r.level, v1, a.level) + 1;
    }
  }
  return ranges;
}

Result<std::vector<FragmentHit>> EnumerateHits(
    const Fragmentation& fragmentation, const workload::ConcreteQuery& cq,
    const schema::StarSchema& schema, size_t fact_index,
    const FragmentSizes& sizes, uint64_t max_hits) {
  (void)fact_index;
  const workload::QueryClass& qc = *cq.query_class;
  const HitRanges ranges = ComputeHitRanges(fragmentation, cq, schema);
  const uint64_t num_hits = ranges.NumFragments();
  if (num_hits > max_hits) {
    return Status::ResourceExhausted(
        "concrete query touches " + std::to_string(num_hits) +
        " fragments, above the enumeration limit of " +
        std::to_string(max_hits));
  }

  // Selectivity contribution of restrictions on non-fragmentation
  // dimensions: identical for every hit fragment.
  double unfragmented_factor = 1.0;
  bool unfragmented_fully = true;
  {
    const auto& rs = qc.restrictions();
    for (size_t ri = 0; ri < rs.size(); ++ri) {
      if (fragmentation.LevelOf(rs[ri].dim).has_value()) continue;
      const schema::Dimension& d = schema.dimension(rs[ri].dim);
      const std::vector<double>& w = d.LevelWeights(rs[ri].level);
      const uint64_t v0 = cq.start_values[ri];
      unfragmented_factor *= SumWeights(w, v0, v0 + rs[ri].num_values);
      if (rs[ri].num_values != d.cardinality(rs[ri].level)) {
        unfragmented_fully = false;
      }
    }
  }

  const size_t k = fragmentation.num_attrs();
  std::vector<FragmentHit> hits;
  hits.reserve(num_hits);
  std::vector<uint64_t> coord(ranges.begin);
  const double total_rows = sizes.total_rows();
  while (true) {
    // Weight (row fraction) and full-qualification flag of this fragment.
    double weight = 1.0;
    bool fully = unfragmented_fully;
    for (size_t i = 0; i < k; ++i) {
      const FragAttr& a = fragmentation.attrs()[i];
      const schema::Dimension& d = schema.dimension(a.dim);
      const std::vector<double>& wf = d.LevelWeights(a.level);
      const size_t ri = RestrictionIndex(qc, a.dim);
      if (ri == SIZE_MAX || qc.restrictions()[ri].level <= a.level) {
        // Unrestricted dimension, or restriction resolved by the fragment
        // boundary: the fragment's whole extent in this dimension qualifies.
        weight *= wf[coord[i]];
      } else {
        // Finer restriction: only the overlap of the query's value range
        // with this fragment's descendants qualifies.
        const workload::Restriction& r = qc.restrictions()[ri];
        const std::vector<double>& wq = d.LevelWeights(r.level);
        const uint64_t v0 = cq.start_values[ri];
        const uint64_t v1 = v0 + r.num_values;  // exclusive
        const auto [dlo, dhi] = d.DescendantRange(a.level, coord[i], r.level);
        const uint64_t lo = std::max(v0, dlo);
        const uint64_t hi = std::min(v1, dhi);
        weight *= lo < hi ? SumWeights(wq, lo, hi) : 0.0;
        if (!(v0 <= dlo && dhi <= v1)) fully = false;
      }
    }
    weight *= unfragmented_factor;

    FragmentHit hit;
    hit.fragment_id = fragmentation.FragmentId(coord);
    hit.qualifying_rows =
        std::min(total_rows * weight, sizes.rows(hit.fragment_id));
    hit.fully_qualified = fully;
    if (hit.qualifying_rows > 0.0) hits.push_back(hit);

    // Odometer increment over the hit ranges.
    size_t i = k;
    while (i-- > 0) {
      if (++coord[i] < ranges.end[i]) break;
      coord[i] = ranges.begin[i];
      if (i == 0) return hits;
    }
    if (k == 0) return hits;  // empty fragmentation: single fragment
  }
}

}  // namespace warlock::fragment
