#!/usr/bin/env bash
# One-shot tier-1 verify: configure + build + ctest, exactly what CI runs.
#
# Usage:
#   scripts/check.sh            # Release build in build/
#   PRESET=asan scripts/check.sh  # use a CMakePresets.json configure preset
#   BUILD_DIR=out scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

if [[ -n "${PRESET:-}" ]]; then
  cmake --preset "$PRESET"
  cmake --build --preset "$PRESET" -j "$JOBS"
  ctest --preset "$PRESET"
  BUILD_DIR="build-$PRESET"
else
  BUILD_DIR="${BUILD_DIR:-build}"
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$JOBS"
  (cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")
fi

# Scenario-sweep smoke: the tiny 4-scenario spec end to end (spec parse ->
# generator -> parallel advisor runs -> reports), so release/asan/werror all
# exercise the scenario subsystem beyond its unit tests.
"$BUILD_DIR/examples/warlock_sweep" examples/data/smoke.sweep --threads 2 \
  --csv "$BUILD_DIR/sweep_smoke.csv" --json "$BUILD_DIR/sweep_smoke.json" \
  --quiet
echo "warlock_sweep smoke OK"

# The sweep's allocation-backend comparison must actually populate the
# winner column: every data row carries "warlock" or "graph" (cancelled or
# failed rows keep "-"; the smoke spec has none).
python3 - "$BUILD_DIR/sweep_smoke.csv" <<'EOF'
import csv, sys
with open(sys.argv[1]) as f:
    rows = list(csv.DictReader(f))
assert rows, "sweep smoke CSV has no rows"
for row in rows:
    winner = row["allocator_winner"]
    assert winner in ("warlock", "graph"), (
        f"scenario {row['index']}: unexpected allocator_winner {winner!r}")
print(f"allocator_winner column OK ({len(rows)} rows)")
EOF

# Service smoke: warlockd end to end on loopback — start the daemon on an
# ephemeral port, run one advise through warlock_client, and require the
# returned artifact to be byte-identical to the direct CLI's JSON ranking;
# then a clean SIGTERM shutdown (exit 0).
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"; [[ -n "${WARLOCKD_PID:-}" ]] && kill "$WARLOCKD_PID" 2>/dev/null || true' EXIT

"$BUILD_DIR/examples/warlockd" --port 0 --port-file "$SMOKE_DIR/port" \
  --workers 2 &
WARLOCKD_PID=$!
for _ in $(seq 1 100); do
  [[ -s "$SMOKE_DIR/port" ]] && break
  sleep 0.1
done
[[ -s "$SMOKE_DIR/port" ]] || { echo "error: warlockd wrote no port file" >&2; exit 1; }
PORT="$(cat "$SMOKE_DIR/port")"

"$BUILD_DIR/examples/warlock_client" --port "$PORT" \
  --out "$SMOKE_DIR/service_ranking.json" \
  advise examples/data/apb1.schema examples/data/apb1.workload \
  examples/data/default.config

"$BUILD_DIR/examples/warlock_tool" examples/data/apb1.schema \
  examples/data/apb1.workload examples/data/default.config \
  "$SMOKE_DIR" >/dev/null

diff "$SMOKE_DIR/service_ranking.json" "$SMOKE_DIR/warlock_ranking.json" \
  || { echo "error: service artifact diverges from direct CLI output" >&2; exit 1; }

# Metrics smoke: the daemon's `metrics` method end to end, in both
# exposition formats. The Prometheus text must carry the key server series
# (the advise above guarantees non-trivial values), the JSON must be a
# well-formed "metrics" artifact.
"$BUILD_DIR/examples/warlock_client" --port "$PORT" \
  --out "$SMOKE_DIR/metrics.prom" metrics --format prometheus
python3 - "$SMOKE_DIR/metrics.prom" <<'EOF'
import sys
text = open(sys.argv[1]).read()
required = [
    "warlock_server_accepted",
    "warlock_server_uptime_ms",
    "warlock_server_requests_advise",
    "warlock_server_latency_us_advise_count",
    "warlock_session_cache_misses",
]
for series in required:
    assert series in text, f"metrics exposition missing {series}"
print(f"prometheus exposition OK ({len(text.splitlines())} lines)")
EOF

"$BUILD_DIR/examples/warlock_client" --port "$PORT" \
  --out "$SMOKE_DIR/metrics.json" metrics --format json
python3 - "$SMOKE_DIR/metrics.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["artifact"] == "metrics", doc.get("artifact")
assert doc["counters"]["server.requests.advise"] >= 1
assert "server.latency_us.advise" in doc["histograms"]
print("metrics JSON artifact OK")
EOF

kill -TERM "$WARLOCKD_PID"
WARLOCKD_STATUS=0
wait "$WARLOCKD_PID" || WARLOCKD_STATUS=$?
WARLOCKD_PID=""
[[ "$WARLOCKD_STATUS" -eq 0 ]] \
  || { echo "error: warlockd exited $WARLOCKD_STATUS on SIGTERM" >&2; exit 1; }
echo "warlockd service smoke OK (port $PORT, clean shutdown)"
