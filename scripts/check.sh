#!/usr/bin/env bash
# One-shot tier-1 verify: configure + build + ctest, exactly what CI runs.
#
# Usage:
#   scripts/check.sh            # Release build in build/
#   PRESET=asan scripts/check.sh  # use a CMakePresets.json configure preset
#   BUILD_DIR=out scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

if [[ -n "${PRESET:-}" ]]; then
  cmake --preset "$PRESET"
  cmake --build --preset "$PRESET" -j "$JOBS"
  ctest --preset "$PRESET"
else
  BUILD_DIR="${BUILD_DIR:-build}"
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$JOBS"
  (cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")
fi
