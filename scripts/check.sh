#!/usr/bin/env bash
# One-shot tier-1 verify: configure + build + ctest, exactly what CI runs.
#
# Usage:
#   scripts/check.sh            # Release build in build/
#   PRESET=asan scripts/check.sh  # use a CMakePresets.json configure preset
#   BUILD_DIR=out scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

if [[ -n "${PRESET:-}" ]]; then
  cmake --preset "$PRESET"
  cmake --build --preset "$PRESET" -j "$JOBS"
  ctest --preset "$PRESET"
  BUILD_DIR="build-$PRESET"
else
  BUILD_DIR="${BUILD_DIR:-build}"
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$JOBS"
  (cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")
fi

# Scenario-sweep smoke: the tiny 4-scenario spec end to end (spec parse ->
# generator -> parallel advisor runs -> reports), so release/asan/werror all
# exercise the scenario subsystem beyond its unit tests.
"$BUILD_DIR/examples/warlock_sweep" examples/data/smoke.sweep --threads 2 \
  --csv "$BUILD_DIR/sweep_smoke.csv" --json "$BUILD_DIR/sweep_smoke.json" \
  --quiet
echo "warlock_sweep smoke OK"

# The sweep's allocation-backend comparison must actually populate the
# winner column: every data row carries "warlock" or "graph" (cancelled or
# failed rows keep "-"; the smoke spec has none).
python3 - "$BUILD_DIR/sweep_smoke.csv" <<'EOF'
import csv, sys
with open(sys.argv[1]) as f:
    rows = list(csv.DictReader(f))
assert rows, "sweep smoke CSV has no rows"
for row in rows:
    winner = row["allocator_winner"]
    assert winner in ("warlock", "graph"), (
        f"scenario {row['index']}: unexpected allocator_winner {winner!r}")
print(f"allocator_winner column OK ({len(rows)} rows)")
EOF
