#!/usr/bin/env python3
"""Coarse perf-regression gate over Google Benchmark JSON output.

Compares every benchmark series present in both the checked-in baseline and
the current run by real (wall-clock) time and fails when any series is more
than --threshold times slower. The threshold is deliberately coarse: it
catches accidental serialization of the advisor's parallel phases or an
O(n) slip in the hot path, while staying insensitive to machine speed
differences of CI runners within a factor of the threshold.

Speedup gates (--speedup FAST:SLOW:MIN, repeatable) additionally assert a
minimum ratio between two series *of the current run*: real_time(SLOW) /
real_time(FAST) >= MIN. Because both sides come from the same run on the
same machine, the ratio is immune to runner speed — it locks relative wins
(e.g. the session's warm what-if being >= 10x cheaper than a cold
evaluation) that an absolute threshold cannot express.

Usage:
  bench_gate.py --baseline bench/BENCH_advisor_baseline.json \
                --current BENCH_advisor.json [--threshold 2.0] \
                [--speedup BM_SessionWhatIfWarm:BM_AdvisorWhatIfCold:10]
"""

import argparse
import json
import sys


def load_series(path):
    with open(path) as f:
        doc = json.load(f)
    series = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        series[b["name"]] = float(b["real_time"])
    return series


def parse_speedup(spec):
    parts = spec.rsplit(":", 2)
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"--speedup expects FAST:SLOW:MIN, got '{spec}'")
    fast, slow, minimum = parts
    try:
        return fast, slow, float(minimum)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--speedup minimum must be a number, got '{minimum}'")


def check_speedups(current, specs):
    """Returns the names of failed speedup gates."""
    failures = []
    for fast, slow, minimum in specs:
        missing = [n for n in (fast, slow) if n not in current]
        if missing:
            print(f"bench_gate: speedup series missing from current run: "
                  f"{missing}", file=sys.stderr)
            failures.append(f"{fast}:{slow}")
            continue
        ratio = current[slow] / current[fast] if current[fast] > 0 else 0.0
        verdict = "FAIL" if ratio < minimum else "ok"
        print(f"  {verdict:4} speedup {slow} / {fast}: {ratio:.1f}x "
              f"(required >= {minimum:g}x)")
        if ratio < minimum:
            failures.append(f"{fast}:{slow}")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--threshold", type=float, default=2.0)
    parser.add_argument("--speedup", action="append", default=[],
                        type=parse_speedup, metavar="FAST:SLOW:MIN")
    args = parser.parse_args()

    baseline = load_series(args.baseline)
    current = load_series(args.current)

    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("bench_gate: no common benchmark series between "
              f"{args.baseline} and {args.current}", file=sys.stderr)
        return 2

    failures = []
    for name in shared:
        ratio = current[name] / baseline[name] if baseline[name] > 0 else 1.0
        verdict = "FAIL" if ratio > args.threshold else "ok"
        print(f"  {verdict:4} {name}: baseline {baseline[name]:.2f}, "
              f"current {current[name]:.2f} ({ratio:.2f}x)")
        if ratio > args.threshold:
            failures.append(name)

    missing = sorted(set(baseline) - set(current))
    if missing:
        print(f"bench_gate: series missing from current run: {missing}",
              file=sys.stderr)
        failures.extend(missing)

    failures.extend(check_speedups(current, args.speedup))

    if failures:
        print(f"bench_gate: {len(failures)} gate(s) failed: {failures}",
              file=sys.stderr)
        return 1
    print(f"bench_gate: {len(shared)} series within {args.threshold}x "
          f"of baseline, {len(args.speedup)} speedup gate(s) held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
