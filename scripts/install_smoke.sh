#!/usr/bin/env bash
# Install/package smoke: `cmake --install`s the warlock package into a
# scratch prefix and builds + runs examples/quickstart.cpp out-of-tree via
# `find_package(warlock CONFIG)` — the consumer contract the CI `install`
# job locks.
#
# Usage:
#   scripts/install_smoke.sh               # uses build-install/
#   BUILD_DIR=out scripts/install_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"
BUILD_DIR="${BUILD_DIR:-build-install}"
PREFIX="$PWD/$BUILD_DIR/prefix"
OOT_DIR="$BUILD_DIR/consumer"

# Library-only configure: the consumer needs the installed package, not the
# in-tree tests/benches/examples.
cmake -B "$BUILD_DIR" -S . \
  -DWARLOCK_BUILD_TESTS=OFF \
  -DWARLOCK_BUILD_BENCHES=OFF \
  -DWARLOCK_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS" --target warlock_core >/dev/null
cmake --install "$BUILD_DIR" --prefix "$PREFIX" >/dev/null

test -f "$PREFIX/include/warlock/warlock/session.h" \
  || { echo "error: public header not installed" >&2; exit 1; }
test -f "$PREFIX/lib/cmake/warlock/warlockConfig.cmake" \
  || { echo "error: CMake package config not installed" >&2; exit 1; }

cmake -B "$OOT_DIR" -S examples/install_smoke \
  -DCMAKE_PREFIX_PATH="$PREFIX" >/dev/null
cmake --build "$OOT_DIR" -j "$JOBS" >/dev/null
"$OOT_DIR/quickstart" >/dev/null

echo "install smoke OK: out-of-tree quickstart built and ran against $PREFIX"
