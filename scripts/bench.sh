#!/usr/bin/env bash
# Timed perf harness: runs the advisor benchmark drivers (Google Benchmark)
# with JSON output and optionally gates the result against the checked-in
# baseline — the regression fence CI uses once hot-path work lands.
#
# Drivers: bench_e13_parallel_advisor (candidate-level fan-out),
# bench_e14_prefetch_search (nested prefetch-granule search),
# bench_e15_scenario_sweep (scenario-level sweep fan-out) and
# bench_e16_session_whatif (warm Session::WhatIf state reuse vs cold
# per-call Advisor construction), bench_e17_allocator_compare (the
# "warlock" heuristic vs the "graph" partitioning allocation backend) and
# bench_e18_service_roundtrip (a warm cached warlockd request over loopback
# vs the cold session build it amortizes) and bench_e19_metrics_overhead
# (Advisor::Run with the observability timing switch on vs off). Their JSON
# outputs are merged into one artifact so the gate sees every series.
#
# Usage:
#   scripts/bench.sh                       # build + run, writes BENCH_advisor.json
#   OUT=/tmp/b.json scripts/bench.sh       # choose the output path
#   BENCH_FILTER=Threads scripts/bench.sh  # --benchmark_filter passthrough
#   CHECK_BASELINE=1 scripts/bench.sh      # also fail if any series is more
#                                          # than BENCH_THRESHOLD (default 2.0)
#                                          # times slower than
#                                          # bench/BENCH_advisor_baseline.json
#
# Regenerate the baseline after an intentional perf-relevant change:
#   OUT=bench/BENCH_advisor_baseline.json scripts/bench.sh
# and review the diff alongside the code change.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_advisor.json}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"
DRIVERS=(bench_e13_parallel_advisor bench_e14_prefetch_search
         bench_e15_scenario_sweep bench_e16_session_whatif
         bench_e17_allocator_compare bench_e18_service_roundtrip
         bench_e19_metrics_overhead)

cmake -B "$BUILD_DIR" -S . >/dev/null
for driver in "${DRIVERS[@]}"; do
  if ! cmake --build "$BUILD_DIR" -j "$JOBS" --target "$driver" >/dev/null; then
    echo "error: cannot build $driver (is Google Benchmark installed?)" >&2
    exit 3
  fi
done

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

for driver in "${DRIVERS[@]}"; do
  BIN="$BUILD_DIR/bench/$driver"
  ARGS=(--benchmark_out="$TMP_DIR/$driver.json" --benchmark_out_format=json
        --benchmark_format=json)
  if [[ -n "${BENCH_FILTER:-}" ]]; then
    ARGS+=(--benchmark_filter="$BENCH_FILTER")
  fi
  # The drivers print their experiment notebook to stdout before the JSON;
  # keep the console readable and rely on --benchmark_out for the artifact.
  "$BIN" "${ARGS[@]}" >/dev/null
done

# Merge the per-driver outputs into one artifact: first driver's context,
# concatenated benchmark series.
python3 - "$OUT" "$TMP_DIR"/*.json <<'EOF'
import json
import sys

out_path, *inputs = sys.argv[1:]
merged = None
for path in inputs:
    with open(path) as f:
        doc = json.load(f)
    if merged is None:
        merged = doc
    else:
        merged["benchmarks"].extend(doc.get("benchmarks", []))
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
EOF
echo "wrote $OUT"

# The speedup gates compare two series of the *current* run, so they hold on
# any machine: a warm (memo-served) WhatIf must stay >= 10x cheaper than a
# cold per-call evaluation (the delta re-costing win), a Run() under a
# live deadline/cancel token must stay within ~1.25x of an unbounded Run()
# (ratio >= 0.8 — the cooperative-cancellation checks are in the noise),
# a warm cached warlockd round trip must stay >= 5x cheaper than the
# cold session build it replaces (the daemon's reason to exist), and an
# instrumented Run() must stay within ~1.05x of a registry-disabled one
# (ratio >= 0.95 — five stage timers per run are in the noise).
if [[ -n "${CHECK_BASELINE:-}" ]]; then
  python3 scripts/bench_gate.py \
    --baseline bench/BENCH_advisor_baseline.json \
    --current "$OUT" \
    --threshold "${BENCH_THRESHOLD:-2.0}" \
    --speedup "BM_SessionWhatIfWarm:BM_AdvisorWhatIfCold:${BENCH_WARM_SPEEDUP:-10}" \
    --speedup "BM_AdvisorRunDeadlineCheck/1/real_time:BM_AdvisorRunThreads/1/real_time:${BENCH_DEADLINE_RATIO:-0.8}" \
    --speedup "BM_ServiceWarmRoundtrip:BM_ServiceColdSessionBuild:${BENCH_SERVICE_SPEEDUP:-5}" \
    --speedup "BM_AdvisorRunMetricsOn:BM_AdvisorRunMetricsOff:${BENCH_METRICS_RATIO:-0.95}"
fi
