#!/usr/bin/env bash
# Regenerate the golden ranking snapshot after an intentional model change.
# Builds the golden test, reruns it with WARLOCK_UPDATE_GOLDEN=1 (which
# rewrites tests/testdata/*.golden), then verifies the fresh snapshot
# passes. Review the resulting diff before committing.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="$(realpath -m "${BUILD_DIR:-build}")"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" --target golden_ranking_test -j >/dev/null

cd tests
WARLOCK_UPDATE_GOLDEN=1 "$BUILD_DIR/tests/golden_ranking_test" >/dev/null
"$BUILD_DIR/tests/golden_ranking_test"
git --no-pager diff -- testdata
