// The WARLOCK command-line tool: the full input -> prediction -> analysis
// pipeline driven by the three input-layer files (star schema, weighted
// query mix, database & disk parameters), as a DBA would run it — now a
// thin shell over the `warlock::Session` facade.
//
// Usage:
//   warlock_tool <schema.txt> <workload.txt> <config.txt> [csv_out_dir]
//
// Sample inputs live in examples/data/ :
//   ./build/examples/warlock_tool examples/data/apb1.schema examples/data/apb1.workload examples/data/default.config /tmp
//
// Prints the ranked candidate list, the exclusion report, the winner's
// per-query-class statistics, disk occupancy, and a per-class disk access
// profile; optionally writes the CSV and JSON exports.

#include <cstdio>
#include <string>

#include "common/format.h"
#include "common/thread_pool.h"
#include "warlock/session.h"

int main(int argc, char** argv) {
  using namespace warlock;
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <schema.txt> <workload.txt> <config.txt> "
                 "[csv_out_dir]\n",
                 argv[0]);
    return 2;
  }

  auto session = Session::FromFiles(argv[1], argv[2], argv[3]);
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }

  std::printf("WARLOCK data allocation tool\n");
  std::printf("schema '%s': %zu dimensions, fact '%s' with %llu rows\n",
              session->schema().name().c_str(),
              session->schema().num_dimensions(),
              session->schema().fact().name().c_str(),
              static_cast<unsigned long long>(
                  session->schema().fact().row_count()));
  std::printf("workload: %zu weighted query classes\n", session->mix().size());
  std::printf("disks: %u x %s\n", session->config().cost.disks.num_disks,
              FormatBytes(session->config().cost.disks.disk_capacity_bytes)
                  .c_str());
  std::printf("evaluation threads: %u%s\n\n",
              common::ThreadPool::ResolveThreadCount(
                  session->config().threads),
              session->config().threads == 0 ? " (auto)" : "");

  auto advice = session->Advise();
  if (!advice.ok()) {
    std::fprintf(stderr, "advisor: %s\n",
                 advice.status().ToString().c_str());
    return 1;
  }
  const core::AdvisorResult& result = advice->result;
  const schema::StarSchema& schema = session->schema();
  const workload::QueryMix& mix = session->mix();

  auto table = report::Renderer::Create(report::OutputFormat::kTable);
  std::printf("%s\n", table->Ranking(result, schema).value().c_str());
  std::printf("%s\n", table->Exclusions(result, schema).value().c_str());

  if (const core::EvaluatedCandidate* best = advice->best()) {
    std::printf("%s\n", table->QueryStats(*best, mix, schema).value().c_str());
    std::printf("%s\n", table->Occupancy(*best).value().c_str());
    auto profile = session->DiskAccessProfile(best->fragmentation,
                                              mix.query_class(0));
    if (profile.ok()) {
      std::printf("%s\n",
                  table->DiskProfile(*profile, mix.query_class(0).name())
                      .value()
                      .c_str());
    }
    if (argc > 4) {
      const std::string dir = argv[4];
      auto csv = report::Renderer::Create(report::OutputFormat::kCsv);
      auto json = report::Renderer::Create(report::OutputFormat::kJson);
      Status st = report::WriteArtifact(dir + "/warlock_ranking.csv",
                                        csv->Ranking(result, schema));
      if (st.ok()) {
        st = report::WriteArtifact(dir + "/warlock_best_stats.csv",
                                   csv->QueryStats(*best, mix, schema));
      }
      if (st.ok()) {
        st = report::WriteArtifact(dir + "/warlock_ranking.json",
                                   json->Ranking(result, schema));
      }
      if (!st.ok()) {
        std::fprintf(stderr, "export: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("CSV/JSON reports written to %s\n", dir.c_str());
    }
  }
  return 0;
}
