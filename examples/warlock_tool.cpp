// The WARLOCK command-line tool: the full input -> prediction -> analysis
// pipeline driven by the three input-layer files (star schema, weighted
// query mix, database & disk parameters), as a DBA would run it.
//
// Usage:
//   warlock_tool <schema.txt> <workload.txt> <config.txt> [csv_out_dir]
//
// Sample inputs live in examples/data/ :
//   ./build/examples/warlock_tool examples/data/apb1.schema examples/data/apb1.workload examples/data/default.config /tmp
//
// Prints the ranked candidate list, the exclusion report, the winner's
// per-query-class statistics, disk occupancy, and a per-class disk access
// profile; optionally writes the CSV exports.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/format.h"
#include "common/thread_pool.h"
#include "core/advisor.h"
#include "core/config_text.h"
#include "report/report.h"
#include "schema/schema_text.h"
#include "workload/workload_text.h"

namespace {

warlock::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) return warlock::Status::IoError("cannot open " + path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace warlock;
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <schema.txt> <workload.txt> <config.txt> "
                 "[csv_out_dir]\n",
                 argv[0]);
    return 2;
  }

  auto schema_text = ReadFile(argv[1]);
  auto workload_text = ReadFile(argv[2]);
  auto config_text = ReadFile(argv[3]);
  for (const auto* r : {&schema_text, &workload_text, &config_text}) {
    if (!r->ok()) {
      std::fprintf(stderr, "%s\n", r->status().ToString().c_str());
      return 1;
    }
  }

  auto schema_or = schema::SchemaFromText(*schema_text);
  if (!schema_or.ok()) {
    std::fprintf(stderr, "schema: %s\n",
                 schema_or.status().ToString().c_str());
    return 1;
  }
  auto mix_or = workload::QueryMixFromText(*workload_text, *schema_or);
  if (!mix_or.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 mix_or.status().ToString().c_str());
    return 1;
  }
  auto config_or = core::ToolConfigFromText(*config_text);
  if (!config_or.ok()) {
    std::fprintf(stderr, "config: %s\n",
                 config_or.status().ToString().c_str());
    return 1;
  }

  std::printf("WARLOCK data allocation tool\n");
  std::printf("schema '%s': %zu dimensions, fact '%s' with %llu rows\n",
              schema_or->name().c_str(), schema_or->num_dimensions(),
              schema_or->fact().name().c_str(),
              static_cast<unsigned long long>(
                  schema_or->fact().row_count()));
  std::printf("workload: %zu weighted query classes\n", mix_or->size());
  std::printf("disks: %u x %s\n", config_or->cost.disks.num_disks,
              FormatBytes(config_or->cost.disks.disk_capacity_bytes)
                  .c_str());
  std::printf("evaluation threads: %u%s\n\n",
              common::ThreadPool::ResolveThreadCount(config_or->threads),
              config_or->threads == 0 ? " (auto)" : "");

  const core::Advisor advisor(*schema_or, *mix_or, *config_or);
  auto result_or = advisor.Run();
  if (!result_or.ok()) {
    std::fprintf(stderr, "advisor: %s\n",
                 result_or.status().ToString().c_str());
    return 1;
  }
  const core::AdvisorResult& result = *result_or;

  std::printf("%s\n", report::RenderRanking(result, *schema_or).c_str());
  std::printf("%s\n", report::RenderExclusions(result, *schema_or).c_str());

  if (!result.ranking.empty()) {
    const core::EvaluatedCandidate& best =
        result.candidates[result.ranking[0]];
    std::printf("%s\n",
                report::RenderQueryStats(best, *mix_or, *schema_or).c_str());
    std::printf("%s\n", report::RenderOccupancy(best).c_str());
    auto profile = advisor.DiskAccessProfile(best.fragmentation,
                                             mix_or->query_class(0));
    if (profile.ok()) {
      std::printf("%s\n",
                  report::RenderDiskProfile(*profile,
                                            mix_or->query_class(0).name())
                      .c_str());
    }
    if (argc > 4) {
      const std::string dir = argv[4];
      auto st = report::RankingToCsv(result, *schema_or)
                    .WriteFile(dir + "/warlock_ranking.csv");
      if (st.ok()) {
        st = report::QueryStatsToCsv(best, *mix_or, *schema_or)
                 .WriteFile(dir + "/warlock_best_stats.csv");
      }
      if (!st.ok()) {
        std::fprintf(stderr, "csv: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("CSV reports written to %s\n", dir.c_str());
    }
  }
  return 0;
}
