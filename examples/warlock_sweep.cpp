// The WARLOCK scenario sweep driver: expands a declarative sweep spec into
// N synthetic warehouse scenarios (star schema + query mix + disk config),
// runs the full advisor pipeline on every one of them in parallel, and
// reports the per-scenario winners — the batch counterpart of the
// interactive warlock_tool.
//
// Usage:
//   warlock_sweep <spec.sweep> [--threads N] [--advisor-threads N]
//                 [--csv path] [--json path] [--quiet]
//
// Sample specs live in examples/data/ :
//   ./build/examples/warlock_sweep examples/data/demo.sweep
//
// The sweep output is deterministic: for a fixed spec the table, CSV and
// JSON are bit-identical at every --threads / --advisor-threads setting.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/thread_pool.h"
#include "report/renderer.h"
#include "scenario/scenario_text.h"
#include "scenario/sweep.h"

namespace {

warlock::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) return warlock::Status::IoError("cannot open " + path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <spec.sweep> [--threads N] [--advisor-threads N] "
               "[--csv path] [--json path] [--quiet]\n",
               argv0);
  return 2;
}

// Strict non-negative integer option parse: rejects the sign wrap and junk
// that strtoul would silently accept ("-1" -> 4 billion workers).
bool ParseU32Option(const char* arg, uint32_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(arg, &end, 10);
  if (arg[0] == '-' || end == arg || *end != '\0' || v > 4096) return false;
  *out = static_cast<uint32_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace warlock;
  if (argc < 2) return Usage(argv[0]);

  const std::string spec_path = argv[1];
  scenario::SweepOptions options;
  std::string csv_path, json_path;
  bool quiet = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--threads" && has_value) {
      if (!ParseU32Option(argv[++i], &options.threads)) return Usage(argv[0]);
    } else if (arg == "--advisor-threads" && has_value) {
      if (!ParseU32Option(argv[++i], &options.advisor_threads)) {
        return Usage(argv[0]);
      }
    } else if (arg == "--csv" && has_value) {
      csv_path = argv[++i];
    } else if (arg == "--json" && has_value) {
      json_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.advisor_threads == 0) options.advisor_threads = 1;

  auto text = ReadFile(spec_path);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  auto spec = scenario::SpecFromText(*text);
  if (!spec.ok()) {
    std::fprintf(stderr, "spec: %s\n", spec.status().ToString().c_str());
    return 1;
  }

  if (!quiet) {
    std::printf("WARLOCK scenario sweep\n");
    std::printf("spec '%s': %u scenarios, seed %llu\n", spec->name.c_str(),
                spec->scenarios,
                static_cast<unsigned long long>(spec->seed));
    std::printf("sweep threads: %u%s, advisor threads: %u\n\n",
                common::ThreadPool::ResolveThreadCount(options.threads),
                options.threads == 0 ? " (auto)" : "",
                options.advisor_threads);
  }

  auto result = scenario::RunSweep(*spec, options);
  if (!result.ok()) {
    std::fprintf(stderr, "sweep: %s\n", result.status().ToString().c_str());
    return 1;
  }

  if (!quiet) {
    auto table = report::Renderer::Create(report::OutputFormat::kTable);
    std::printf("%s\n", table->Sweep(*result).value().c_str());
  }

  size_t failures = 0;
  for (const auto& o : result->outcomes) {
    if (!o.ok) ++failures;
  }

  if (!csv_path.empty()) {
    auto csv = report::Renderer::Create(report::OutputFormat::kCsv);
    auto st = report::WriteArtifact(csv_path, csv->Sweep(*result));
    if (!st.ok()) {
      std::fprintf(stderr, "csv: %s\n", st.ToString().c_str());
      return 1;
    }
    if (!quiet) std::printf("CSV report written to %s\n", csv_path.c_str());
  }
  if (!json_path.empty()) {
    auto json = report::Renderer::Create(report::OutputFormat::kJson);
    auto st = report::WriteArtifact(json_path, json->Sweep(*result));
    if (!st.ok()) {
      std::fprintf(stderr, "json: %s\n", st.ToString().c_str());
      return 1;
    }
    if (!quiet) std::printf("JSON report written to %s\n", json_path.c_str());
  }

  if (failures > 0) {
    std::fprintf(stderr, "%zu of %zu scenarios failed\n", failures,
                 result->outcomes.size());
    return 1;
  }
  return 0;
}
