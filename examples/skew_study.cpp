// Skew study: how Zipf data skew changes WARLOCK's recommendation.
//
// Sweeps the Product dimension's bottom-level Zipf parameter and shows,
// for each skew level, the recommended fragmentation, the allocation
// scheme the tool switches to (round-robin -> greedy), the occupancy
// balance both schemes would achieve, and the response-time cost of
// ignoring skew. One owning session per skew level; the forced-allocation
// comparisons are warm `WhatIf` calls against it.
//
// Usage: ./build/examples/skew_study

#include <cstdio>

#include "alloc/allocators.h"
#include "common/format.h"
#include "common/text_table.h"
#include "schema/apb1.h"
#include "warlock/session.h"
#include "workload/apb1_workload.h"

int main() {
  using namespace warlock;

  TextTable table({"theta", "Recommended", "Alloc", "SizeSkew",
                   "RR balance", "GR balance", "Resp (chosen)",
                   "Resp (RR forced)"});

  for (double theta : {0.0, 0.5, 0.75, 1.0}) {
    auto schema_or =
        schema::Apb1Schema({.density = 0.005, .product_theta = theta});
    if (!schema_or.ok()) return 1;
    auto mix_or = workload::Apb1QueryMix(*schema_or);
    if (!mix_or.ok()) return 1;

    core::ToolConfig config;
    config.cost.disks.num_disks = 64;
    config.cost.samples_per_class = 4;
    config.prefetch = core::PrefetchPolicy::kFixed;
    config.cost.fact_granule = 32;
    config.cost.bitmap_granule = 4;
    config.thresholds.max_fragments = 1 << 18;
    config.thresholds.min_avg_fragment_pages = 4;
    config.ranking.top_k = 3;

    auto session_or = Session::Create(std::move(schema_or).value(),
                                      std::move(mix_or).value(), config);
    if (!session_or.ok()) return 1;
    const Session& session = *session_or;

    auto advice = session.Advise();
    if (!advice.ok() || advice->best() == nullptr) {
      std::fprintf(stderr, "advisor failed at theta=%.2f\n", theta);
      continue;
    }
    const core::EvaluatedCandidate& best = *advice->best();

    // What would round-robin placement cost at this skew level?
    WhatIfRequest rr{best.fragmentation, {}};
    rr.overrides.allocation_scheme = alloc::AllocationScheme::kRoundRobin;
    WhatIfRequest gr{best.fragmentation, {}};
    gr.overrides.allocation_scheme = alloc::AllocationScheme::kGreedy;
    auto rr_ec = session.WhatIf(rr);
    auto gr_ec = session.WhatIf(gr);
    if (!rr_ec.ok() || !gr_ec.ok()) continue;

    table.BeginRow()
        .AddNumeric(FormatFixed(theta, 2))
        .Add(best.fragmentation.Label(session.schema()))
        .Add(alloc::AllocationSchemeName(best.allocation_scheme))
        .AddNumeric(FormatFixed(best.size_skew_factor, 2))
        .AddNumeric(FormatFixed(rr_ec->candidate.allocation_balance, 3))
        .AddNumeric(FormatFixed(gr_ec->candidate.allocation_balance, 3))
        .AddNumeric(FormatMillis(best.cost.response_ms))
        .AddNumeric(FormatMillis(rr_ec->candidate.cost.response_ms));
  }

  std::printf("Skew study (APB-1, 64 disks, Product bottom-level Zipf)\n\n");
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Reading: under notable skew WARLOCK switches to the greedy\n"
      "size-based scheme, which keeps *occupancy* balanced (the paper's\n"
      "stated goal: no disk overflows) where round-robin degrades.\n"
      "Per-query response can still slightly favor round-robin's regular\n"
      "striping, because a query's hit set is contiguous in logical\n"
      "fragment order — occupancy balance and access balance are\n"
      "different goals, which is why WARLOCK only applies greedy under\n"
      "notable skew.\n");
  return 0;
}
