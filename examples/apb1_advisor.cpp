// APB-1 advisor session driven entirely through WARLOCK's input layer:
// schema, workload, and tool configuration are provided as text (the same
// format the files in a DBA's working directory would use), a
// `warlock::Session` runs the advisor, and every analysis view is written
// to stdout plus CSV files.
//
// Usage:
//   ./build/examples/apb1_advisor [output_dir]
//
// This mirrors the paper's demonstration flow: define schema -> define
// weighted query classes -> set database/disk parameters -> inspect the
// ranked fragmentations and the winner's allocation.

#include <cstdio>
#include <string>

#include "report/report.h"
#include "warlock/session.h"

namespace {

constexpr const char* kSchemaText = R"(
# APB-1 star schema (OLAP Council Release II hierarchy cardinalities),
# scaled to ~8.7M fact rows.
schema APB1
dimension Product
level Division 2
level Line 7
level Family 20
level Group 100
level Class 900
level Code 9000
dimension Customer
level Retailer 90
level Store 900
dimension Time
level Year 2
level Quarter 8
level Month 24
dimension Channel
level Base 9
fact Sales 8748000 100
measure UnitsSold 8
measure DollarSales 8
measure DollarCost 8
)";

constexpr const char* kWorkloadText = R"(
# Weighted star-query classes (APB-1 style).
query Month 10
restrict Time Month
query MonthFamily 10
restrict Time Month
restrict Product Family
query MonthGroup 10
restrict Time Month
restrict Product Group
query MonthCode 4
restrict Time Month
restrict Product Code
query MonthStore 8
restrict Time Month
restrict Customer Store
query QuarterGroupRetailer 8
restrict Time Quarter
restrict Product Group
restrict Customer Retailer
query MonthFamilyChannel 8
restrict Time Month
restrict Product Family
restrict Channel Base
query YearFamily 5
restrict Time Year
restrict Product Family
)";

constexpr const char* kConfigText = R"(
# Database & disk parameters.
disks 64
page_size 8192
disk_capacity_gb 16
seek_ms 8.0
rotational_ms 4.2
transfer_mbs 25
fact_granule auto
bitmap_granule auto
max_fragments 262144
min_avg_fragment_pages 4
max_dimensions 4
standard_max_cardinality 64
leading_fraction 0.25
top_k 8
allocation auto
samples_per_class 4
seed 42
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace warlock;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  auto session = Session::FromText(kSchemaText, kWorkloadText, kConfigText);
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  const schema::StarSchema& schema = session->schema();

  auto advice = session->Advise();
  if (!advice.ok()) {
    std::fprintf(stderr, "advisor: %s\n",
                 advice.status().ToString().c_str());
    return 1;
  }
  const core::AdvisorResult& result = advice->result;

  auto table = report::Renderer::Create(report::OutputFormat::kTable);
  std::printf("%s\n", table->Ranking(result, schema).value().c_str());
  std::printf("%s\n", table->Exclusions(result, schema).value().c_str());

  const std::string ranking_csv = out_dir + "/apb1_ranking.csv";
  auto st = report::RankingToCsv(result, schema).WriteFile(ranking_csv);
  if (!st.ok()) {
    std::fprintf(stderr, "csv: %s\n", st.ToString().c_str());
  } else {
    std::printf("wrote %s\n", ranking_csv.c_str());
  }

  if (const core::EvaluatedCandidate* best = advice->best()) {
    std::printf("\n%s\n",
                table->QueryStats(*best, session->mix(), schema).value().c_str());
    std::printf("%s\n", table->Occupancy(*best).value().c_str());
    const std::string stats_csv = out_dir + "/apb1_best_query_stats.csv";
    st = report::QueryStatsToCsv(*best, session->mix(), schema)
             .WriteFile(stats_csv);
    if (st.ok()) std::printf("wrote %s\n", stats_csv.c_str());
  }
  return 0;
}
