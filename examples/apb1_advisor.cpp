// APB-1 advisor session driven entirely through WARLOCK's input layer:
// schema, workload, and tool configuration are provided as text (the same
// format the files in a DBA's working directory would use), the advisor
// runs, and every analysis view is written to stdout plus CSV files.
//
// Usage:
//   ./build/examples/apb1_advisor [output_dir]
//
// This mirrors the paper's demonstration flow: define schema -> define
// weighted query classes -> set database/disk parameters -> inspect the
// ranked fragmentations and the winner's allocation.

#include <cstdio>
#include <string>

#include "core/advisor.h"
#include "core/config_text.h"
#include "report/report.h"
#include "schema/schema_text.h"
#include "workload/workload_text.h"

namespace {

constexpr const char* kSchemaText = R"(
# APB-1 star schema (OLAP Council Release II hierarchy cardinalities),
# scaled to ~8.7M fact rows.
schema APB1
dimension Product
level Division 2
level Line 7
level Family 20
level Group 100
level Class 900
level Code 9000
dimension Customer
level Retailer 90
level Store 900
dimension Time
level Year 2
level Quarter 8
level Month 24
dimension Channel
level Base 9
fact Sales 8748000 100
measure UnitsSold 8
measure DollarSales 8
measure DollarCost 8
)";

constexpr const char* kWorkloadText = R"(
# Weighted star-query classes (APB-1 style).
query Month 10
restrict Time Month
query MonthFamily 10
restrict Time Month
restrict Product Family
query MonthGroup 10
restrict Time Month
restrict Product Group
query MonthCode 4
restrict Time Month
restrict Product Code
query MonthStore 8
restrict Time Month
restrict Customer Store
query QuarterGroupRetailer 8
restrict Time Quarter
restrict Product Group
restrict Customer Retailer
query MonthFamilyChannel 8
restrict Time Month
restrict Product Family
restrict Channel Base
query YearFamily 5
restrict Time Year
restrict Product Family
)";

constexpr const char* kConfigText = R"(
# Database & disk parameters.
disks 64
page_size 8192
disk_capacity_gb 16
seek_ms 8.0
rotational_ms 4.2
transfer_mbs 25
fact_granule auto
bitmap_granule auto
max_fragments 262144
min_avg_fragment_pages 4
max_dimensions 4
standard_max_cardinality 64
leading_fraction 0.25
top_k 8
allocation auto
samples_per_class 4
seed 42
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace warlock;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  auto schema_or = schema::SchemaFromText(kSchemaText);
  if (!schema_or.ok()) {
    std::fprintf(stderr, "schema: %s\n",
                 schema_or.status().ToString().c_str());
    return 1;
  }
  auto mix_or = workload::QueryMixFromText(kWorkloadText, *schema_or);
  if (!mix_or.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 mix_or.status().ToString().c_str());
    return 1;
  }
  auto config_or = core::ToolConfigFromText(kConfigText);
  if (!config_or.ok()) {
    std::fprintf(stderr, "config: %s\n",
                 config_or.status().ToString().c_str());
    return 1;
  }

  const core::Advisor advisor(*schema_or, *mix_or, *config_or);
  auto result_or = advisor.Run();
  if (!result_or.ok()) {
    std::fprintf(stderr, "advisor: %s\n",
                 result_or.status().ToString().c_str());
    return 1;
  }
  const core::AdvisorResult& result = *result_or;

  std::printf("%s\n", report::RenderRanking(result, *schema_or).c_str());
  std::printf("%s\n", report::RenderExclusions(result, *schema_or).c_str());

  const std::string ranking_csv = out_dir + "/apb1_ranking.csv";
  auto st = report::RankingToCsv(result, *schema_or).WriteFile(ranking_csv);
  if (!st.ok()) {
    std::fprintf(stderr, "csv: %s\n", st.ToString().c_str());
  } else {
    std::printf("wrote %s\n", ranking_csv.c_str());
  }

  if (!result.ranking.empty()) {
    const core::EvaluatedCandidate& best =
        result.candidates[result.ranking[0]];
    std::printf("\n%s\n",
                report::RenderQueryStats(best, *mix_or, *schema_or).c_str());
    std::printf("%s\n", report::RenderOccupancy(best).c_str());
    const std::string stats_csv = out_dir + "/apb1_best_query_stats.csv";
    st = report::QueryStatsToCsv(best, *mix_or, *schema_or)
             .WriteFile(stats_csv);
    if (st.ok()) std::printf("wrote %s\n", stats_csv.c_str());
  }
  return 0;
}
