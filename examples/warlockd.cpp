// warlockd: the long-lived WARLOCK advisor daemon. Binds a loopback TCP
// port, speaks the versioned JSON protocol of `service/protocol.h`, and
// amortizes session construction across requests through the
// content-addressed session cache.
//
// Usage:
//   warlockd [--host ADDR] [--port N] [--workers N] [--max-active N]
//            [--cache-capacity N] [--session-threads N] [--port-file PATH]
//
//   --port 0 (the default) picks an ephemeral port; --port-file writes the
//   bound port as a decimal line so scripts can find the daemon.
//
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight requests complete
// or are answered with a structured Cancelled document, never truncated.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/server.h"

namespace {

// Signal handlers may only touch lock-free state; the main thread polls
// this flag and runs the actual (lock-taking) shutdown.
volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host ADDR] [--port N] [--workers N] "
               "[--max-active N] [--cache-capacity N] "
               "[--session-threads N] [--port-file PATH]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace warlock;

  service::ServerOptions options;
  std::string port_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = (i + 1 < argc) ? argv[i + 1] : nullptr;
    if (arg == "--help" || arg == "-h") return Usage(argv[0]);
    if (value == nullptr) return Usage(argv[0]);
    if (arg == "--host") {
      options.host = value;
    } else if (arg == "--port") {
      options.port = static_cast<uint16_t>(std::atoi(value));
    } else if (arg == "--workers") {
      options.workers = static_cast<uint32_t>(std::atoi(value));
    } else if (arg == "--max-active") {
      options.max_active = static_cast<size_t>(std::atoll(value));
    } else if (arg == "--cache-capacity") {
      options.cache_capacity = static_cast<size_t>(std::atoll(value));
    } else if (arg == "--session-threads") {
      options.session_threads = static_cast<uint32_t>(std::atoi(value));
    } else if (arg == "--port-file") {
      port_file = value;
    } else {
      return Usage(argv[0]);
    }
    ++i;
  }

  service::Server server(options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "warlockd: %s\n", started.ToString().c_str());
    return 1;
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  std::printf("warlockd: serving warlock_protocol %d on %s:%u\n",
              service::kProtocolVersion, options.host.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warlockd: cannot write port file %s\n",
                   port_file.c_str());
      server.Shutdown();
      return 1;
    }
    std::fprintf(f, "%u\n", static_cast<unsigned>(server.port()));
    std::fclose(f);
  }

  // Park until a signal arrives. sigsuspend-free portable loop: the token
  // poll interval only bounds shutdown latency, not request latency.
  while (g_stop == 0) {
    struct timespec ts;
    ts.tv_sec = 0;
    ts.tv_nsec = 100 * 1000 * 1000;
    nanosleep(&ts, nullptr);
  }

  std::printf("warlockd: shutting down\n");
  std::fflush(stdout);
  server.Shutdown();

  const service::ServerStats stats = server.stats();
  std::printf(
      "warlockd: served %llu ok / %llu error (%llu accepted, %llu shed, "
      "cache %llu hits / %llu misses / %llu evictions)\n",
      static_cast<unsigned long long>(stats.requests_ok),
      static_cast<unsigned long long>(stats.requests_error),
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.shed),
      static_cast<unsigned long long>(stats.cache.hits),
      static_cast<unsigned long long>(stats.cache.misses),
      static_cast<unsigned long long>(stats.cache.evictions));
  return 0;
}
