// warlock_client: the CLI side of the warlockd protocol. Sends one request
// and prints (or writes) the returned renderer artifact.
//
// Usage:
//   warlock_client --port N [--host ADDR] [--deadline-ms N] [--out PATH]
//     advise <schema> <workload> <config> [--top-k N] [--allocator NAME]
//   warlock_client --port N whatif <schema> <workload> <config>
//     --frag DIM:LEVEL [--frag DIM:LEVEL ...] [--num-disks N]
//   warlock_client --port N sweep <spec> [--threads N] [--advisor-threads N]
//   warlock_client --port N stats
//   warlock_client --port N health
//   warlock_client --port N metrics [--format json|prometheus|table|csv]
//
// Exit status: 0 on an ok response, 1 on any transport or server error
// (the structured error document's code and message go to stderr).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "service/client.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port N [--host ADDR] [--deadline-ms N] [--out PATH]\n"
      "  advise <schema> <workload> <config> [--top-k N] "
      "[--allocator NAME]\n"
      "  whatif <schema> <workload> <config> --frag DIM:LEVEL [...]\n"
      "         [--num-disks N] [--fact-granule N] [--bitmap-granule N]\n"
      "  sweep <spec> [--threads N] [--advisor-threads N]\n"
      "  stats | health\n"
      "  metrics [--format json|prometheus|table|csv]  (default: table)\n",
      argv0);
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream buf;
  buf << f.rdbuf();
  *out = buf.str();
  return f.good() || f.eof();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace warlock;

  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::optional<uint64_t> deadline_ms;
  std::string out_path;
  std::string method;
  std::vector<std::string> paths;
  std::optional<uint64_t> top_k;
  std::optional<std::string> allocator;
  std::vector<std::pair<std::string, std::string>> fragmentation;
  std::optional<uint32_t> num_disks, threads, advisor_threads;
  std::optional<uint64_t> fact_granule, bitmap_granule;
  std::optional<std::string> metrics_format;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") return Usage(argv[0]);
    if (arg == "--host") {
      const char* v = value();
      if (!v) return Usage(argv[0]);
      host = v;
    } else if (arg == "--port") {
      const char* v = value();
      if (!v) return Usage(argv[0]);
      port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--deadline-ms") {
      const char* v = value();
      if (!v) return Usage(argv[0]);
      deadline_ms = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--out") {
      const char* v = value();
      if (!v) return Usage(argv[0]);
      out_path = v;
    } else if (arg == "--top-k") {
      const char* v = value();
      if (!v) return Usage(argv[0]);
      top_k = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--allocator") {
      const char* v = value();
      if (!v) return Usage(argv[0]);
      allocator = std::string(v);
    } else if (arg == "--frag") {
      const char* v = value();
      if (!v) return Usage(argv[0]);
      const char* colon = std::strchr(v, ':');
      if (colon == nullptr) {
        std::fprintf(stderr, "--frag wants DIM:LEVEL, got '%s'\n", v);
        return 2;
      }
      fragmentation.emplace_back(std::string(v, colon), std::string(colon + 1));
    } else if (arg == "--num-disks") {
      const char* v = value();
      if (!v) return Usage(argv[0]);
      num_disks = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--fact-granule") {
      const char* v = value();
      if (!v) return Usage(argv[0]);
      fact_granule = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--bitmap-granule") {
      const char* v = value();
      if (!v) return Usage(argv[0]);
      bitmap_granule = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--threads") {
      const char* v = value();
      if (!v) return Usage(argv[0]);
      threads = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--advisor-threads") {
      const char* v = value();
      if (!v) return Usage(argv[0]);
      advisor_threads = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--format") {
      const char* v = value();
      if (!v) return Usage(argv[0]);
      metrics_format = std::string(v);
    } else if (method.empty()) {
      method = arg;
    } else {
      paths.push_back(arg);
    }
  }

  if (port == 0 || method.empty()) return Usage(argv[0]);

  auto client = service::Client::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }

  Result<service::Response> response =
      Status::InvalidArgument("unknown method: " + method);
  if (method == "advise" || method == "whatif") {
    if (paths.size() != 3) return Usage(argv[0]);
    std::string schema_text, workload_text, config_text;
    if (!ReadFile(paths[0], &schema_text) ||
        !ReadFile(paths[1], &workload_text) ||
        !ReadFile(paths[2], &config_text)) {
      std::fprintf(stderr, "cannot read input files\n");
      return 1;
    }
    if (method == "advise") {
      service::AdviseCall call;
      call.schema_text = std::move(schema_text);
      call.workload_text = std::move(workload_text);
      call.config_text = std::move(config_text);
      call.top_k = top_k;
      call.allocator = allocator;
      call.deadline_ms = deadline_ms;
      response = client->Advise(call);
    } else {
      service::WhatIfCall call;
      call.schema_text = std::move(schema_text);
      call.workload_text = std::move(workload_text);
      call.config_text = std::move(config_text);
      call.fragmentation = fragmentation;
      call.num_disks = num_disks;
      call.fact_granule = fact_granule;
      call.bitmap_granule = bitmap_granule;
      call.allocator = allocator;
      call.deadline_ms = deadline_ms;
      response = client->WhatIf(call);
    }
  } else if (method == "sweep") {
    if (paths.size() != 1) return Usage(argv[0]);
    service::SweepCall call;
    if (!ReadFile(paths[0], &call.spec_text)) {
      std::fprintf(stderr, "cannot read sweep spec\n");
      return 1;
    }
    call.threads = threads;
    call.advisor_threads = advisor_threads;
    call.deadline_ms = deadline_ms;
    response = client->Sweep(call);
  } else if (method == "stats") {
    response = client->Stats();
  } else if (method == "health") {
    response = client->Health();
  } else if (method == "metrics") {
    // Interactive default is the pretty table; scripts pass --format.
    response = client->Metrics(metrics_format.value_or("table"));
  } else {
    return Usage(argv[0]);
  }

  if (!response.ok()) {
    std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
    return 1;
  }
  if (!response->status.ok()) {
    std::fprintf(stderr, "%s\n", response->status.ToString().c_str());
    return 1;
  }

  if (!out_path.empty()) {
    std::ofstream f(out_path, std::ios::binary);
    f << response->payload;
    f.close();
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "%s artifact written to %s (cache_hit=%s)\n",
                 response->method.c_str(), out_path.c_str(),
                 response->session_cache_hit ? "true" : "false");
  } else {
    std::fputs(response->payload.c_str(), stdout);
  }
  return 0;
}
