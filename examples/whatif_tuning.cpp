// Interactive fine-tuning session (paper §3.3): starting from the
// advisor's recommendation, explore the what-if knobs the GUI exposes —
// disk count, prefetch granules, allocation scheme, and bitmap-index
// exclusions — and print the performance variation each change implies.
//
// Every variation is one warm `Session::WhatIf` call against the same
// owning session: the memoized bitmap scheme and fragment sizes are reused,
// only the overridden knob is recosted.
//
// Usage: ./build/examples/whatif_tuning

#include <cstdio>

#include "alloc/allocators.h"
#include "common/format.h"
#include "common/text_table.h"
#include "schema/apb1.h"
#include "warlock/session.h"
#include "workload/apb1_workload.h"

namespace {

void AddRow(warlock::TextTable& table, const char* label,
            const warlock::core::EvaluatedCandidate& ec) {
  table.BeginRow()
      .Add(label)
      .AddNumeric(warlock::FormatMillis(ec.cost.io_work_ms))
      .AddNumeric(warlock::FormatMillis(ec.cost.response_ms))
      .AddNumeric(warlock::FormatBytes(
          static_cast<uint64_t>(ec.bitmap_storage_bytes)))
      .AddNumeric(warlock::FormatFixed(ec.allocation_balance, 3))
      .AddNumeric(std::to_string(ec.fact_granule) + "/" +
                  std::to_string(ec.bitmap_granule));
}

}  // namespace

int main() {
  using namespace warlock;

  auto schema_or = schema::Apb1Schema({.density = 0.005});
  if (!schema_or.ok()) return 1;
  auto mix_or = workload::Apb1QueryMix(*schema_or);
  if (!mix_or.ok()) return 1;

  core::ToolConfig config;
  config.cost.disks.num_disks = 64;
  config.cost.samples_per_class = 4;
  config.prefetch = core::PrefetchPolicy::kFixed;
  config.cost.fact_granule = 32;
  config.cost.bitmap_granule = 4;
  config.thresholds.max_fragments = 1 << 18;
  config.thresholds.min_avg_fragment_pages = 4;

  auto session_or = Session::Create(std::move(schema_or).value(),
                                    std::move(mix_or).value(), config);
  if (!session_or.ok()) {
    std::fprintf(stderr, "%s\n", session_or.status().ToString().c_str());
    return 1;
  }
  const Session& session = *session_or;
  const schema::StarSchema& schema = session.schema();

  auto frag = fragment::Fragmentation::FromNames(
      {{"Time", "Month"}, {"Product", "Family"}, {"Channel", "Base"}},
      schema);
  if (!frag.ok()) return 1;

  std::printf("What-if tuning on %s (APB-1, 8.7M rows)\n\n",
              frag->Label(schema).c_str());
  TextTable table({"Scenario", "Work/Q", "Resp/Q", "Bitmap space",
                   "Balance", "Gf/Gb"});

  auto base = session.WhatIf({*frag, {}});
  if (!base.ok()) {
    std::fprintf(stderr, "%s\n", base.status().ToString().c_str());
    return 1;
  }
  AddRow(table, "baseline (64 disks, Gf=32/Gb=4)", base->candidate);

  // Each subsequent call is warm: only the override is recosted.
  {
    WhatIfRequest req{*frag, {}};
    req.overrides.num_disks = 128;
    auto ec = session.WhatIf(req);
    if (ec.ok()) AddRow(table, "double the disks (128)", ec->candidate);
  }
  {
    WhatIfRequest req{*frag, {}};
    req.overrides.num_disks = 16;
    auto ec = session.WhatIf(req);
    if (ec.ok()) AddRow(table, "shrink to 16 disks", ec->candidate);
  }
  {
    WhatIfRequest req{*frag, {}};
    req.overrides.fact_granule = 1;
    req.overrides.bitmap_granule = 1;
    auto ec = session.WhatIf(req);
    if (ec.ok()) AddRow(table, "no prefetching (granule 1/1)", ec->candidate);
  }
  {
    WhatIfRequest req{*frag, {}};
    req.overrides.fact_granule = 128;
    req.overrides.bitmap_granule = 16;
    auto ec = session.WhatIf(req);
    if (ec.ok()) AddRow(table, "aggressive prefetch (128/16)", ec->candidate);
  }
  {
    WhatIfRequest req{*frag, {}};
    req.overrides.allocation_scheme = alloc::AllocationScheme::kGreedy;
    auto ec = session.WhatIf(req);
    if (ec.ok()) AddRow(table, "force greedy allocation", ec->candidate);
  }
  {
    // Drop the space-heavy encoded indexes of Product and Customer.
    WhatIfRequest req{*frag, {}};
    const auto product =
        static_cast<uint32_t>(schema.DimensionIndex("Product").value());
    const auto customer =
        static_cast<uint32_t>(schema.DimensionIndex("Customer").value());
    req.overrides.excluded_bitmaps = {
        bitmap::BitmapRef{product, 5},   // Code
        bitmap::BitmapRef{product, 4},   // Class
        bitmap::BitmapRef{customer, 1},  // Store
    };
    auto ec = session.WhatIf(req);
    if (ec.ok()) AddRow(table, "drop Code/Class/Store bitmaps", ec->candidate);
  }

  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Reading: doubling disks halves response at constant work; dropping\n"
      "prefetching multiplies positioning overhead; excluding the\n"
      "high-cardinality bitmap indexes saves space but sends fine-grained\n"
      "restrictions back to fragment scans.\n");
  return 0;
}
