// Quickstart: run the WARLOCK advisor on the built-in APB-1 configuration
// and print the ranked fragmentation candidates, the detailed statistics of
// the winner, and its disk allocation.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/advisor.h"
#include "report/report.h"
#include "schema/apb1.h"
#include "workload/apb1_workload.h"

int main() {
  using namespace warlock;

  // 1. Input layer: star schema, query mix, database & disk parameters.
  auto schema_or = schema::Apb1Schema({.density = 0.01});
  if (!schema_or.ok()) {
    std::fprintf(stderr, "schema: %s\n",
                 schema_or.status().ToString().c_str());
    return 1;
  }
  const schema::StarSchema& schema = *schema_or;

  auto mix_or = workload::Apb1QueryMix(schema);
  if (!mix_or.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 mix_or.status().ToString().c_str());
    return 1;
  }
  const workload::QueryMix& mix = *mix_or;

  core::ToolConfig config;
  config.cost.disks.num_disks = 64;
  config.thresholds.max_fragments = 1 << 20;
  config.thresholds.min_avg_fragment_pages = 4;
  config.ranking.top_k = 10;

  // 2. Prediction layer: enumerate, exclude, cost, twofold-rank.
  core::Advisor advisor(schema, mix, config);
  auto result_or = advisor.Run();
  if (!result_or.ok()) {
    std::fprintf(stderr, "advisor: %s\n",
                 result_or.status().ToString().c_str());
    return 1;
  }
  const core::AdvisorResult& result = *result_or;

  // 3. Analysis layer: ranked list, per-query statistics, allocation.
  std::printf("%s\n", report::RenderRanking(result, schema).c_str());
  if (!result.ranking.empty()) {
    const core::EvaluatedCandidate& best =
        result.candidates[result.ranking[0]];
    std::printf("%s\n", report::RenderQueryStats(best, mix, schema).c_str());
    std::printf("%s\n", report::RenderOccupancy(best).c_str());

    auto profile_or = advisor.DiskAccessProfile(
        best.fragmentation, mix.query_class(0));
    if (profile_or.ok()) {
      std::printf("%s\n",
                  report::RenderDiskProfile(*profile_or,
                                            mix.query_class(0).name())
                      .c_str());
    }
  }
  return 0;
}
