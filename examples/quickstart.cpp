// Quickstart: the WARLOCK library API in one file — build a session from
// the three textual input-layer artifacts, run the advisor, render the
// ranked fragmentation candidates plus the winner's statistics and disk
// allocation, then iterate a what-if.
//
// This file deliberately uses only the single public include
// `warlock/session.h`, so it doubles as the out-of-tree consumer smoke
// test (`scripts/install_smoke.sh` builds it against an installed package
// via `find_package(warlock CONFIG)`).
//
// Build & run in-tree:
//   cmake -B build && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "warlock/session.h"

namespace {

// A down-scaled APB-1 star schema (~875k fact rows) so the demo finishes in
// well under a second.
constexpr const char* kSchemaText = R"(
schema APB1-demo
dimension Product
level Division 2
level Line 7
level Family 20
level Group 100
dimension Customer
level Retailer 90
level Store 900
dimension Time
level Year 2
level Quarter 8
level Month 24
fact Sales 874800 100
measure UnitsSold 8
)";

constexpr const char* kWorkloadText = R"(
query Month 10
restrict Time Month
query MonthFamily 10
restrict Time Month
restrict Product Family
query MonthStore 8
restrict Time Month
restrict Customer Store
query QuarterGroupRetailer 8
restrict Time Quarter
restrict Product Group
restrict Customer Retailer
)";

constexpr const char* kConfigText = R"(
disks 16
page_size 8192
disk_capacity_gb 16
fact_granule auto
bitmap_granule auto
max_fragments 65536
min_avg_fragment_pages 4
leading_fraction 0.25
top_k 5
samples_per_class 2
seed 42
)";

}  // namespace

int main() {
  using namespace warlock;

  // 1. Input layer: one owning session holds schema, query mix, and
  //    database/disk parameters — no lifetime bookkeeping for the caller.
  auto session = Session::FromText(kSchemaText, kWorkloadText, kConfigText);
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }

  // 2. Prediction layer: enumerate, exclude, cost, twofold-rank.
  auto advice = session->Advise();
  if (!advice.ok()) {
    std::fprintf(stderr, "advise: %s\n",
                 advice.status().ToString().c_str());
    return 1;
  }

  // 3. Analysis layer: any artifact, any backend (table / csv / json).
  auto renderer = report::Renderer::Create(report::OutputFormat::kTable);
  std::printf("%s\n",
              renderer->Ranking(advice->result, session->schema()).value().c_str());
  if (const core::EvaluatedCandidate* best = advice->best()) {
    std::printf("%s\n",
                renderer->QueryStats(*best, session->mix(), session->schema())
                    .value()
                    .c_str());
    std::printf("%s\n", renderer->Occupancy(*best).value().c_str());

    // 4. Interactive fine-tuning: the warm session reuses its memoized
    //    bitmap scheme and fragment sizes — only the override is recosted.
    WhatIfRequest request{best->fragmentation, {}};
    request.overrides.num_disks = 32;
    auto whatif = session->WhatIf(request);
    if (whatif.ok()) {
      std::printf("what-if (32 disks): response %.2f ms -> %.2f ms/query\n",
                  best->cost.response_ms,
                  whatif->candidate.cost.response_ms);
    }
  }
  return 0;
}
